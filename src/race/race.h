// The arm-agnostic racing engine: adaptive simulation-budget allocation with
// confidence-bounded best-arm identification (DESIGN.md §9).
//
// An "arm" is anything whose samples are a deterministic, RANDOM-ACCESS pure
// function of (arm index, sample index) — the same purity contract the
// scenario generator pins for specs. The engine never sees what an arm is;
// race::PolicyRace plugs in (policy, scenario-region) pairs scored through
// sim::BatchRunner, and the planted-ground-truth tests plug in synthetic
// Bernoulli streams with known means.
//
// Three allocation modes, all driven by the bounds of race/bounds.h:
//
//   * kSuccessiveHalving — classic budgeted elimination: ceil(log2 k) rounds,
//     each round spends budget/(|survivors|·rounds) pulls per surviving arm
//     and keeps the top half by empirical mean. Every elimination is recorded
//     in order, so tests can hand-trace the whole tournament. Confidence is
//     assessed post-hoc with the anytime-δ intervals.
//   * kLucb — LUCB-style (δ, ε) best-arm identification: each round pulls
//     ONLY the empirical leader and its strongest challenger (highest upper
//     bound), stopping the moment the leader's lower bound clears every
//     challenger's upper bound minus ε. This is where the budget-to-verdict
//     win over fixed allocation comes from: sims concentrate on the arms
//     that still matter.
//   * kUniform — the fixed-allocation baseline: every round pulls EVERY arm,
//     with the SAME (δ, ε) stopping rule. Exists so "racing spends X% of the
//     fixed budget for the same verdict" is measured inside one engine
//     rather than across two implementations (E16, planted-truth tests).
//
// Determinism: allocation decisions read only banked statistics, samplers
// are pure, and all tie-breaks are by arm index — so the full trajectory
// (pulls, eliminations, verdict) is a deterministic function of (arms,
// options, sampler). tests/race_stress_test.cpp pins this across thread
// counts and cache configurations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "race/bounds.h"
#include "util/welford.h"

namespace nowsched::race {

enum class Mode {
  kSuccessiveHalving,
  kLucb,
  kUniform,
};

const char* to_string(Mode mode);

/// Batch sampler: scores of samples [start, start+count) of `arm`. Must be
/// random-access pure — sample i of arm a has one value no matter when or
/// in what grouping it is drawn — and every score must lie in
/// [0, RaceOptions::score_range].
using ArmSampler = std::function<std::vector<double>(
    std::size_t arm, std::uint64_t start, std::size_t count)>;

struct RaceOptions {
  Mode mode = Mode::kSuccessiveHalving;
  /// kSuccessiveHalving: total pull budget across all arms and rounds.
  std::size_t budget = 2048;
  /// Mis-identification probability bound for the (δ, ε) stopping rule and
  /// the post-hoc intervals.
  double delta = 0.01;
  /// Allowed sub-optimality of the identified arm (ε-best identification);
  /// 0 demands the exact best arm.
  double epsilon = 0.0;
  /// kLucb/kUniform: pulls per selected arm per round (also the warm-up
  /// pull count every arm receives before the first stopping check).
  std::size_t batch = 16;
  /// kLucb/kUniform: hard cap on total pulls; hitting it ends the race with
  /// confident == false.
  std::size_t max_total_pulls = 1u << 20;
  /// Scores lie in [0, score_range] (the bounds need the range).
  double score_range = 1.0;

  /// Throws std::invalid_argument on nonsense (arms < 2, delta outside
  /// (0,1), zero batch/budget, cap below the warm-up cost, ...).
  void validate(std::size_t arms) const;
};

struct ArmOutcome {
  util::Welford stats;
  /// Anytime-δ confidence interval on the arm mean at the race's δ (see
  /// race/bounds.h: δ is scheduled over arms and over the arm's batch
  /// count, so these ends are valid at the adaptive stopping time).
  double lower = 0.0;
  double upper = 0.0;
  /// Number of pull-batches this arm received (the t in anytime_delta).
  std::size_t batches = 0;
  /// kSuccessiveHalving: 1-based round this arm was eliminated in;
  /// 0 = survived to the end (other modes always 0).
  std::size_t round_eliminated = 0;
};

struct RaceResult {
  std::size_t best = 0;  ///< identified arm (empirical leader at stop)
  /// True when the (δ, ε) separation held at stop: the best arm's lower
  /// bound cleared every other surviving arm's upper bound minus ε.
  bool confident = false;
  std::size_t total_pulls = 0;
  std::size_t rounds = 0;
  std::vector<ArmOutcome> arms;
  /// kSuccessiveHalving: arm indices in elimination order (worst first;
  /// within a round ascending mean, ties eliminate the higher index).
  std::vector<std::size_t> elimination_order;
};

/// Runs the race over `arms` arms. Deterministic given (arms, options,
/// sampler). Throws std::invalid_argument via options.validate, and
/// std::logic_error when the sampler returns a malformed batch (wrong
/// length, score outside [0, score_range], NaN).
RaceResult run_race(std::size_t arms, const RaceOptions& options,
                    const ArmSampler& sampler);

}  // namespace nowsched::race
