#include "race/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nowsched::race {

namespace {

void require_bound_args(double range, double delta) {
  if (!(range > 0.0)) {
    throw std::invalid_argument("race bounds: score range must be > 0");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    throw std::invalid_argument("race bounds: delta must lie in (0, 1)");
  }
}

}  // namespace

double hoeffding_radius(std::size_t n, double range, double delta) {
  require_bound_args(range, delta);
  if (n == 0) return std::numeric_limits<double>::infinity();
  return range * std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(n)));
}

double empirical_bernstein_radius(std::size_t n, double sample_variance,
                                  double range, double delta) {
  require_bound_args(range, delta);
  if (sample_variance < 0.0) {
    throw std::invalid_argument("race bounds: sample variance must be >= 0");
  }
  if (n == 0) return std::numeric_limits<double>::infinity();
  const double nd = static_cast<double>(n);
  const double log_term = std::log(3.0 / delta);
  return std::sqrt(2.0 * sample_variance * log_term / nd) +
         3.0 * range * log_term / nd;
}

double confidence_radius(const util::Welford& stats, double range, double delta) {
  require_bound_args(range, delta);
  // δ/2 to each bound: the min of two level-(δ/2) bounds holds at level δ.
  const double half = delta / 2.0;
  return std::min(hoeffding_radius(stats.n, range, half),
                  empirical_bernstein_radius(stats.n, stats.variance(), range, half));
}

double anytime_delta(double delta, std::size_t arms, std::size_t batch_index) {
  if (arms == 0) {
    throw std::invalid_argument("race bounds: anytime_delta needs arms >= 1");
  }
  if (batch_index == 0) {
    throw std::invalid_argument("race bounds: anytime_delta is 1-based in t");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    throw std::invalid_argument("race bounds: delta must lie in (0, 1)");
  }
  const double t = static_cast<double>(batch_index);
  return delta / (static_cast<double>(arms) * t * (t + 1.0));
}

Interval confidence_interval(const util::Welford& stats, double range, double delta) {
  require_bound_args(range, delta);
  if (stats.n == 0) return {0.0, range};
  const double radius = confidence_radius(stats, range, delta);
  return {std::max(0.0, stats.mean - radius), std::min(range, stats.mean + radius)};
}

}  // namespace nowsched::race
