#include "race/policy_race.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/hash.h"
#include "util/parse.h"

namespace nowsched::race {

namespace {

/// Domain tag separating race generator streams from every other
/// hash_combine user (scenario index streams, store checksums, ...).
constexpr std::uint64_t kRaceTag = 0xBA1DACE5;

std::string format_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

double parse_double_field(const std::string& value, const std::string& line) {
  const auto x = util::parse_double(value);
  if (!x) {
    throw std::invalid_argument("verdict: malformed number in '" + line + "'");
  }
  return *x;
}

std::uint64_t parse_uint_field(const std::string& value, const std::string& line) {
  const auto x = util::parse_uint64(value);
  if (!x) {
    throw std::invalid_argument("verdict: malformed integer in '" + line + "'");
  }
  return *x;
}

}  // namespace

std::string arm_label(const PolicyArm& arm, const std::vector<Region>& regions) {
  if (arm.region >= regions.size()) {
    throw std::invalid_argument("arm_label: region index out of range");
  }
  return std::string(sim::to_string(arm.policy)) + "@" + regions[arm.region].name;
}

PolicyRace::PolicyRace(std::vector<Region> regions, std::vector<PolicyArm> arms,
                       PolicyRaceOptions options)
    : regions_(std::move(regions)),
      arms_(std::move(arms)),
      options_(std::move(options)),
      runner_(options_.batch) {
  if (regions_.empty()) {
    throw std::invalid_argument("PolicyRace: need at least one region");
  }
  options_.race.validate(arms_.size());
  generators_.reserve(arms_.size());
  for (const PolicyArm& arm : arms_) {
    if (arm.region >= regions_.size()) {
      throw std::invalid_argument("PolicyRace: arm region index out of range");
    }
    // Matched design: the generator seed depends on the REGION only, and the
    // policy is forced through a one-element mix (which consumes exactly one
    // RNG draw, like any mix) — arms sharing a region therefore face
    // bit-identical contract/owner/seed sequences.
    sim::ScenarioDomain domain = regions_[arm.region].domain;
    domain.policies = {arm.policy};
    const std::uint64_t seed = util::hash_combine(
        util::hash_combine(kRaceTag, options_.seed),
        static_cast<std::uint64_t>(arm.region));
    generators_.emplace_back(std::move(domain), seed);  // validates the domain
  }
}

sim::ScenarioSpec PolicyRace::sample_spec(std::size_t arm,
                                          std::uint64_t index) const {
  if (arm >= arms_.size()) {
    throw std::invalid_argument("PolicyRace: arm index out of range");
  }
  return generators_[arm].at(index);
}

double PolicyRace::score_of(const sim::SessionMetrics& metrics,
                            const sim::ScenarioSpec& spec) {
  return static_cast<double>(metrics.banked_work) /
         static_cast<double>(spec.lifespan);
}

std::vector<double> PolicyRace::score_batch(std::size_t arm, std::uint64_t start,
                                            std::size_t count) {
  std::vector<sim::ScenarioSpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs.push_back(sample_spec(arm, start + static_cast<std::uint64_t>(i)));
  }
  const sim::BatchResult batch = runner_.run(specs);
  std::vector<double> scores;
  scores.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    scores.push_back(score_of(batch.per_scenario[i], specs[i]));
  }
  return scores;
}

PolicyRaceResult PolicyRace::run() {
  PolicyRaceResult result;
  result.race = run_race(
      arms_.size(), options_.race,
      [this](std::size_t arm, std::uint64_t start, std::size_t count) {
        return score_batch(arm, start, count);
      });

  const std::size_t best = result.race.best;
  const ArmOutcome& winner = result.race.arms[best];
  for (std::size_t b = 0; b < arms_.size(); ++b) {
    if (b == best) continue;
    const ArmOutcome& loser = result.race.arms[b];
    VerdictRecord v;
    v.kind = "race";
    v.policy_a = sim::to_string(arms_[best].policy);
    v.region_a = regions_[arms_[best].region].name;
    v.policy_b = sim::to_string(arms_[b].policy);
    v.region_b = regions_[arms_[b].region].name;
    v.mean_a = winner.stats.mean;
    v.mean_b = loser.stats.mean;
    v.gap_mean = winner.stats.mean - loser.stats.mean;
    v.gap_lower = winner.lower - loser.upper;
    v.gap_upper = winner.upper - loser.lower;
    v.delta = options_.race.delta;
    v.epsilon = options_.race.epsilon;
    v.pulls_a = static_cast<std::uint64_t>(winner.stats.n);
    v.pulls_b = static_cast<std::uint64_t>(loser.stats.n);
    v.confident = v.gap_lower >= -options_.race.epsilon;
    result.verdicts.push_back(std::move(v));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Verdict serialization — sibling of the scenario replay format.
// ---------------------------------------------------------------------------

std::string to_verdict_string(const VerdictRecord& v) {
  std::ostringstream os;
  os << "nowsched-verdict v1\n";
  os << "kind=" << v.kind << "\n";
  os << "policy_a=" << v.policy_a << "\n";
  os << "region_a=" << v.region_a << "\n";
  os << "policy_b=" << v.policy_b << "\n";
  os << "region_b=" << v.region_b << "\n";
  os << "mean_a=" << format_double(v.mean_a) << "\n";
  os << "mean_b=" << format_double(v.mean_b) << "\n";
  os << "gap_mean=" << format_double(v.gap_mean) << "\n";
  os << "gap_lower=" << format_double(v.gap_lower) << "\n";
  os << "gap_upper=" << format_double(v.gap_upper) << "\n";
  os << "delta=" << format_double(v.delta) << "\n";
  os << "epsilon=" << format_double(v.epsilon) << "\n";
  os << "pulls_a=" << v.pulls_a << "\n";
  os << "pulls_b=" << v.pulls_b << "\n";
  os << "confident=" << (v.confident ? 1 : 0) << "\n";
  return os.str();
}

VerdictRecord verdict_from_string(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "nowsched-verdict v1") {
    throw std::invalid_argument("verdict: missing 'nowsched-verdict v1' header");
  }
  VerdictRecord v;
  bool saw_kind = false, saw_policy_a = false, saw_policy_b = false,
       saw_gap = false, saw_delta = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("verdict: expected key=value, got '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "kind") {
      v.kind = value;
      saw_kind = true;
    } else if (key == "policy_a") {
      v.policy_a = value;
      saw_policy_a = true;
    } else if (key == "region_a") {
      v.region_a = value;
    } else if (key == "policy_b") {
      v.policy_b = value;
      saw_policy_b = true;
    } else if (key == "region_b") {
      v.region_b = value;
    } else if (key == "mean_a") {
      v.mean_a = parse_double_field(value, line);
    } else if (key == "mean_b") {
      v.mean_b = parse_double_field(value, line);
    } else if (key == "gap_mean") {
      v.gap_mean = parse_double_field(value, line);
      saw_gap = true;
    } else if (key == "gap_lower") {
      v.gap_lower = parse_double_field(value, line);
    } else if (key == "gap_upper") {
      v.gap_upper = parse_double_field(value, line);
    } else if (key == "delta") {
      v.delta = parse_double_field(value, line);
      saw_delta = true;
    } else if (key == "epsilon") {
      v.epsilon = parse_double_field(value, line);
    } else if (key == "pulls_a") {
      v.pulls_a = parse_uint_field(value, line);
    } else if (key == "pulls_b") {
      v.pulls_b = parse_uint_field(value, line);
    } else if (key == "confident") {
      if (value == "1") {
        v.confident = true;
      } else if (value == "0") {
        v.confident = false;
      } else {
        throw std::invalid_argument("verdict: confident must be 0 or 1, got '" +
                                    value + "'");
      }
    } else {
      throw std::invalid_argument("verdict: unknown key '" + key + "'");
    }
  }
  if (!saw_kind || !saw_policy_a || !saw_policy_b || !saw_gap || !saw_delta) {
    throw std::invalid_argument(
        "verdict: incomplete record (need kind, policy_a, policy_b, gap_mean, "
        "delta)");
  }
  return v;
}

}  // namespace nowsched::race
