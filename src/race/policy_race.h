// Statistical policy racing over the generated scenario space (DESIGN.md §9).
//
// An arm is a (policy, scenario-region) pair: "run PolicyKind P on scenarios
// drawn from region R". Pull i of an arm simulates the i-th scenario of the
// region's generator stream with the arm's policy forced, and scores it
//
//     score = banked_work / lifespan  ∈ [0, 1]
//
// (banked_work <= lifespan by the model, so the racing bounds get a true
// range). Scoring goes through ONE persistent sim::BatchRunner, so dp-optimal
// arms share solves through the solve cache across pulls, rounds, and arms.
//
// Matched design: every generator is seeded from (race seed, REGION) — not
// the arm — and the arm's policy is forced by narrowing the region's domain
// to a single-policy mix. Drawing from a one-element policy mix consumes
// exactly one RNG draw, the same as any other mix, so two arms racing
// different policies on the SAME region face bit-identical contract, owner,
// and seed sequences: score differences are pure policy effects, never luck
// of the scenario draw.
//
// Determinism: sample_spec(arm, i) is random-access pure (the generator
// contract), BatchRunner results are bit-identical across thread counts and
// cache configurations, and the race engine breaks every tie by index — so
// the full PolicyRaceResult (verdicts included) is a deterministic function
// of (regions, arms, options). Pinned by tests/race_stress_test.cpp.
//
// Verdicts: the race is distilled into pairwise VerdictRecords — "policy A
// on region Ra beats policy B on region Rb with gap in [lo, hi] at
// confidence 1 − δ" — with a bit-exact text serialization
// ("nowsched-verdict v1", the scenario-replay format's sibling) so nightly
// regret hunts can bank verdicts as artifacts and tests can replay them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "race/race.h"
#include "sim/batch_runner.h"
#include "sim/scenario_gen.h"

namespace nowsched::race {

/// A named sub-region of scenario space. The domain's policy mix is ignored
/// (each arm forces its own policy); everything else — owners, contract
/// ranges, classes — carves out the region.
struct Region {
  std::string name;
  sim::ScenarioDomain domain;
};

/// One arm of the race: run `policy` on scenarios from regions[region].
struct PolicyArm {
  sim::PolicyKind policy = sim::PolicyKind::kEqualized;
  std::size_t region = 0;
};

/// "adaptive-paper@heavy-tail" — the stable display/serialization name of an
/// arm.
std::string arm_label(const PolicyArm& arm, const std::vector<Region>& regions);

struct PolicyRaceOptions {
  RaceOptions race;
  /// Root seed; generator seeds derive from (seed, region index).
  std::uint64_t seed = 0;
  /// Pool / cache configuration for the scoring BatchRunner.
  sim::BatchOptions batch;
};

/// One pairwise conclusion of a race. gap_* bound mean(a) − mean(b): the
/// point estimate and the conservative interval [lower(a) − upper(b),
/// upper(a) − lower(b)] from the arms' anytime-δ intervals.
struct VerdictRecord {
  std::string kind;      ///< "race" (best vs challenger) or "regret" (hunt)
  std::string policy_a;  ///< winner's policy (to_string(PolicyKind))
  std::string region_a;  ///< winner's region name
  std::string policy_b;  ///< loser's policy
  std::string region_b;  ///< loser's region name
  double mean_a = 0.0;
  double mean_b = 0.0;
  double gap_mean = 0.0;
  double gap_lower = 0.0;
  double gap_upper = 0.0;
  double delta = 0.0;    ///< race δ the bounds were computed at
  double epsilon = 0.0;  ///< race ε of the stopping rule
  std::uint64_t pulls_a = 0;
  std::uint64_t pulls_b = 0;
  /// True when the race separated a from b: gap_lower >= −ε at stop.
  bool confident = false;
};

/// Bit-exact text serialization ("nowsched-verdict v1" + key=value lines,
/// doubles at max_digits10). verdict_from_string(to_verdict_string(v))
/// rebuilds v exactly; parsing is strict (unknown keys, malformed numbers,
/// and missing required keys all throw std::invalid_argument).
std::string to_verdict_string(const VerdictRecord& verdict);
VerdictRecord verdict_from_string(const std::string& text);

struct PolicyRaceResult {
  RaceResult race;
  /// Best arm vs every other arm, in ascending loser-arm order. The winner
  /// of each record is always the race's best arm (kind == "race").
  std::vector<VerdictRecord> verdicts;
};

class PolicyRace {
 public:
  /// Validates up front (throws std::invalid_argument): >= 2 arms, every
  /// arm's region index in range, every region domain valid, race options
  /// valid for the arm count.
  PolicyRace(std::vector<Region> regions, std::vector<PolicyArm> arms,
             PolicyRaceOptions options);

  /// The spec pull `index` of `arm` simulates — random-access pure, and
  /// identical across arms that share a region except for the forced
  /// policy. Exposed so the conformance suite can re-run any banked score
  /// directly through BatchRunner.
  sim::ScenarioSpec sample_spec(std::size_t arm, std::uint64_t index) const;

  /// Scores pulls [start, start+count) of `arm` through the persistent
  /// runner — exactly the sampler the race uses.
  std::vector<double> score_batch(std::size_t arm, std::uint64_t start,
                                  std::size_t count);

  /// Runs the race and distills verdicts. Deterministic given construction.
  PolicyRaceResult run();

  /// Solve-cache counters of the scoring runner (shared across all arms).
  solver::SolveCacheStats cache_stats() const { return runner_.cache().stats(); }

  const std::vector<Region>& regions() const noexcept { return regions_; }
  const std::vector<PolicyArm>& arms() const noexcept { return arms_; }
  const PolicyRaceOptions& options() const noexcept { return options_; }

  /// banked_work / lifespan of one session — THE score the race banks.
  static double score_of(const sim::SessionMetrics& metrics,
                         const sim::ScenarioSpec& spec);

 private:
  std::vector<Region> regions_;
  std::vector<PolicyArm> arms_;
  PolicyRaceOptions options_;
  /// Per-arm generators, seeded by REGION (matched design; see file header).
  std::vector<sim::ScenarioGenerator> generators_;
  sim::BatchRunner runner_;
};

}  // namespace nowsched::race
