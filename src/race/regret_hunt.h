// Adversarial regret hunt: search the generated scenario space for the
// regions where a guideline policy gives up the most guaranteed work
// relative to the DP optimum (DESIGN.md §9).
//
// Regret is EXACT, not simulated: for a spec with contract (c, U, p) and a
// guideline policy π,
//
//     regret(spec) = W(p)[U] − R_π(p, U)
//
// where W comes from the (cached) value table of solver/solve.h and R_π from
// solver::evaluate_policy — both worst-case guarantees, so regret is a
// deterministic function of the CONTRACT alone (the owner process only
// steers which contracts a region draws). dp-optimal scenarios have regret 0
// by the conformance-pinned identity R_opt == W. Scores are normalized by
// the lifespan (regret <= W <= U), so they live in [0, 1] like race scores.
//
// The hunt is a deterministic beam search over recursively split regions:
// probe every (frontier region × policy) pair with a fixed number of
// generated scenarios, keep the `beam` highest mean-regret pairs, split
// their regions along the widest contract axis, and descend. All solves go
// through the caller's solver::SolveCache, so sibling regions probing
// similar contracts share tables — the same economics as the batch engine.
//
// Each surviving (region, policy) pair is distilled into a VerdictRecord
// (kind == "regret", winner dp-optimal, loser the guideline policy, gap the
// normalized regret with its empirical-Bernstein interval) so nightly hunts
// can bank worst-region verdicts in the replayable text format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "race/policy_race.h"
#include "solver/solve_cache.h"
#include "util/thread_pool.h"
#include "util/welford.h"

namespace nowsched::race {

/// Exact regret of one spec in ticks (0 for kDpOptimal specs). Solves go
/// through `cache`. Throws std::invalid_argument on an invalid spec.
Ticks regret_ticks(const sim::ScenarioSpec& spec, solver::SolveCache& cache,
                   util::ThreadPool* pool = nullptr);

/// regret_ticks normalized by the lifespan — in [0, 1].
double regret_score(const sim::ScenarioSpec& spec, solver::SolveCache& cache,
                    util::ThreadPool* pool = nullptr);

/// Splits a region into two halves along its widest contract axis (lifespan,
/// then c, then interrupts, by log-width; a point region splits into two
/// copies). Children are named "<name>/lo" and "<name>/hi". Exposed for the
/// unit tests; the hunt calls it to descend.
std::vector<Region> split_region(const Region& region);

struct RegretHuntOptions {
  /// Scenarios probed per (region, policy) pair per round.
  std::size_t probes_per_region = 32;
  /// Split-and-descend rounds (round 1 probes the root only).
  std::size_t rounds = 3;
  /// (region, policy) pairs kept — and regions split — per round.
  std::size_t beam = 2;
  std::uint64_t seed = 0;
  /// δ for the verdict intervals on normalized regret.
  double delta = 0.01;

  /// Throws std::invalid_argument on zero probes/rounds/beam or δ ∉ (0, 1).
  void validate() const;
};

/// One probed (region, policy) pair.
struct RegionRegret {
  Region region;
  sim::PolicyKind policy = sim::PolicyKind::kEqualized;
  /// Normalized regret over the probes (mean/variance feed the verdict).
  util::Welford regret;
  /// Mean normalized guaranteed work of the DP optimum / the guideline over
  /// the same probes (regret.mean == mean_dp − mean_guideline).
  double mean_dp = 0.0;
  double mean_guideline = 0.0;
  /// The probe achieving the maximum regret (replayable via
  /// sim::to_replay_string) and its normalized regret.
  sim::ScenarioSpec worst;
  double worst_regret = 0.0;
  /// Which round this pair was probed in (1-based; depth in the split tree).
  std::size_t round = 0;
};

struct RegretHuntResult {
  /// Every probed pair, sorted by mean regret descending (ties by round,
  /// then region name, then policy — fully deterministic).
  std::vector<RegionRegret> ranked;
  /// ranked[0..beam) distilled as kind == "regret" verdicts.
  std::vector<VerdictRecord> verdicts;
  std::size_t scenarios_evaluated = 0;
};

/// Runs the hunt for the given guideline policies over the root region.
/// Deterministic given (root, policies, options); `cache` only accelerates.
/// Throws std::invalid_argument on an invalid root domain, empty policies,
/// a kDpOptimal entry (its regret is identically 0 — hunting it is a bug),
/// or invalid options.
RegretHuntResult hunt_regret(const Region& root,
                             const std::vector<sim::PolicyKind>& policies,
                             const RegretHuntOptions& options,
                             solver::SolveCache& cache,
                             util::ThreadPool* pool = nullptr);

}  // namespace nowsched::race
