#include "solver/solve_cache.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "solver/fast_solver.h"

namespace nowsched::solver {

SolveKey canonical_key(const SolveRequest& req) {
  require_valid(req.params);
  SolveKey key;
  key.max_p = std::max(req.max_p, 0);
  key.c = req.params.c;
  const Ticks l = std::max<Ticks>(req.max_lifespan, 0);
  key.max_lifespan = ((l + key.c - 1) / key.c) * key.c;
  return key;
}

std::shared_ptr<const ValueTable> solve_shared(const SolveRequest& req,
                                               util::ThreadPool* pool) {
  const SolveKey key = canonical_key(req);
  return std::make_shared<const ValueTable>(
      solve_fast(key.max_p, key.max_lifespan, Params{key.c}, pool));
}

SolveCache::SolveCache() : SolveCache(Options()) {}

SolveCache::SolveCache(Options options)
    : stripes_(options.shards), shards_(stripes_.stripes()) {
  const std::size_t per_shard =
      (std::max<std::size_t>(options.max_entries, 1) + shards_.size() - 1) /
      shards_.size();
  per_shard_capacity_ = std::max<std::size_t>(per_shard, 1);
}

std::shared_ptr<const ValueTable> SolveCache::get_or_solve(const SolveRequest& req,
                                                           util::ThreadPool* pool) {
  const SolveKey key = canonical_key(req);
  const std::uint64_t hash = key.hash();
  const std::size_t index = stripes_.index_for(hash);
  Shard& shard = shards_[index];

  std::promise<TablePtr> promise;
  Future future;
  bool owner = false;
  {
    auto guard = stripes_.lock(hash);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.last_used = ++shard.clock;
      future = it->second.future;  // copy out, then wait outside the lock
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      future = promise.get_future().share();
      shard.map.emplace(key, Entry{future, ++shard.clock});
      evict_excess_locked(shard);
      owner = true;
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (owner) {
    // Solve outside the stripe lock: other keys on this shard stay
    // resolvable, and waiters on THIS key block on the future instead.
    try {
      promise.set_value(solve_shared(req, pool));
    } catch (...) {
      promise.set_exception(std::current_exception());
      auto guard = stripes_.lock(hash);
      auto it = shard.map.find(key);
      // Erase the entry only if it is a *failed* one (ours, or another
      // failed attempt) — a concurrent clear()+re-solve may already have
      // replaced it with a healthy or still-running entry to keep.
      if (it != shard.map.end() &&
          it->second.future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
        try {
          (void)it->second.future.get();
        } catch (...) {
          shard.map.erase(it);
        }
      }
      throw;
    }
  }
  return future.get();  // rethrows the owner's exception for waiters
}

void SolveCache::evict_excess_locked(Shard& shard) {
  // Called with the newly inserted entry holding the freshest clock value,
  // so the LRU minimum can never be the entry we just inserted. Evicting an
  // in-flight entry is safe: waiters hold their own shared_future copies.
  while (shard.map.size() > per_shard_capacity_) {
    auto victim = shard.map.begin();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    shard.map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

SolveCacheStats SolveCache::stats() const {
  SolveCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    s.entries += shards_[i].map.size();
  }
  return s;
}

void SolveCache::clear() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    shards_[i].map.clear();
  }
}

}  // namespace nowsched::solver
