#include "solver/solve_cache.h"

#include <utility>

#include "solver/fast_solver.h"

namespace nowsched::solver {

std::shared_ptr<const ValueTable> solve_shared(const SolveRequest& req,
                                               util::ThreadPool* pool) {
  const SolveKey key = canonical_key(req);
  return std::make_shared<const ValueTable>(
      solve_fast(key.max_p, key.max_lifespan, Params{key.c}, pool));
}

SolveCache::SolveCache() : SolveCache(Options()) {}

SolveCache::SolveCache(Options options)
    : stripes_(options.shards),
      shards_(stripes_.stripes()),
      resident_(ResidentTableStore::Options{options.shards, options.max_bytes}),
      store_(std::move(options.store)) {}

void SolveCache::set_max_bytes(std::size_t max_bytes) {
  resident_.set_max_bytes(max_bytes);
}

std::shared_ptr<const ValueTable> SolveCache::get_or_solve(const SolveRequest& req,
                                                           util::ThreadPool* pool) {
  const SolveKey key = canonical_key(req);
  const std::uint64_t hash = key.hash();
  Shard& shard = shards_[stripes_.index_for(hash)];

  std::promise<TablePtr> promise;
  Future future;
  bool owner = false;
  std::uint64_t my_insert_id = 0;
  {
    auto guard = stripes_.lock(hash);
    // Tier 1, probed under the in-flight stripe so a table moving from the
    // in-flight map to the resident tier (both happen under this lock) can
    // never be missed by a concurrent requester. Lock order is always
    // in-flight stripe → resident stripe, so the nesting cannot deadlock.
    if (TablePtr resident = resident_.load(key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return resident;
    }
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      future = it->second.future;  // copy out, then wait outside the lock
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      future = promise.get_future().share();
      my_insert_id = ++shard.next_id;
      shard.map.emplace(key, Entry{future, my_insert_id});
      owner = true;
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (owner) {
    // Resolve the miss outside the stripe lock: other keys on this stripe
    // stay resolvable, and waiters on THIS key block on the future instead.
    try {
      bool solved = false;
      TablePtr table = store_ ? store_->load(key) : nullptr;
      if (table != nullptr) {
        store_hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        table = solve_shared(req, pool);
        solved = true;
      }
      promise.set_value(table);
      {
        auto guard = stripes_.lock(hash);
        auto it = shard.map.find(key);
        // Promote to the resident tier only if OUR in-flight entry is still
        // the one registered — a concurrent clear() may have dropped it
        // (drop-on-arrival), or a clear()+re-request replaced it with a
        // fresh attempt that will do its own promotion.
        if (it != shard.map.end() && it->second.insert_id == my_insert_id) {
          resident_.store(key, table);  // nested: in-flight → resident
          shard.map.erase(it);
        }
      }
      // Spill a FRESH solve to the persistent tier, outside every lock —
      // a store hit is already on disk, and a failed spill only costs the
      // next cold process a solve.
      if (solved && store_ != nullptr && store_->store(key, table)) {
        spills_.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      promise.set_exception(std::current_exception());
      auto guard = stripes_.lock(hash);
      auto it = shard.map.find(key);
      // Clear only OUR failed attempt so a later call retries — a
      // concurrent clear()+re-request may have installed a healthy entry.
      if (it != shard.map.end() && it->second.insert_id == my_insert_id) {
        shard.map.erase(it);
      }
      throw;
    }
  }
  return future.get();  // rethrows the owner's exception for waiters
}

SolveCacheStats SolveCache::stats() const {
  SolveCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.spills = spills_.load(std::memory_order_relaxed);
  const TableStoreStats resident = resident_.stats();
  s.evictions = resident.evictions;
  s.entries = resident.entries;
  s.resident_bytes = resident.bytes;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    s.entries += shards_[i].map.size();
  }
  return s;
}

void SolveCache::clear() {
  // In-flight entries first: once an owner's insert_id no longer matches,
  // its completion is dropped on arrival instead of repopulating the
  // resident tier we are about to clear.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    shards_[i].map.clear();
  }
  resident_.clear();
}

}  // namespace nowsched::solver
