#include "solver/solve_cache.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "solver/fast_solver.h"

namespace nowsched::solver {

SolveKey canonical_key(const SolveRequest& req) {
  require_valid(req.params);
  SolveKey key;
  key.max_p = std::max(req.max_p, 0);
  key.c = req.params.c;
  const Ticks l = std::max<Ticks>(req.max_lifespan, 0);
  key.max_lifespan = ((l + key.c - 1) / key.c) * key.c;
  return key;
}

std::shared_ptr<const ValueTable> solve_shared(const SolveRequest& req,
                                               util::ThreadPool* pool) {
  const SolveKey key = canonical_key(req);
  return std::make_shared<const ValueTable>(
      solve_fast(key.max_p, key.max_lifespan, Params{key.c}, pool));
}

SolveCache::SolveCache() : SolveCache(Options()) {}

SolveCache::SolveCache(Options options)
    : stripes_(options.shards), shards_(stripes_.stripes()) {
  // An even slice per shard. A slice of 0 is legal: each shard then retains
  // only its most recently finished table (the `keep` guarantee).
  per_shard_budget_ = options.max_bytes / shards_.size();
  max_bytes_ = options.max_bytes;
}

void SolveCache::set_max_bytes(std::size_t max_bytes) {
  max_bytes_.store(max_bytes, std::memory_order_relaxed);
  per_shard_budget_.store(max_bytes / shards_.size(), std::memory_order_relaxed);
  // Shrinks must take effect now, not on the next completion: walk every
  // shard and evict down to the new slice, keeping each shard's most
  // recently used finished table (same guarantee the completion path gives).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    Shard& shard = shards_[i];
    bool found = false;
    SolveKey keep;
    std::uint64_t newest = 0;
    for (const auto& [key, entry] : shard.map) {
      if (entry.bytes == 0) continue;  // in-flight: not evictable anyway
      if (!found || entry.last_used > newest) {
        keep = key;
        newest = entry.last_used;
        found = true;
      }
    }
    if (found) evict_excess_locked(shard, keep);
  }
}

std::shared_ptr<const ValueTable> SolveCache::get_or_solve(const SolveRequest& req,
                                                           util::ThreadPool* pool) {
  const SolveKey key = canonical_key(req);
  const std::uint64_t hash = key.hash();
  const std::size_t index = stripes_.index_for(hash);
  Shard& shard = shards_[index];

  std::promise<TablePtr> promise;
  Future future;
  bool owner = false;
  std::uint64_t my_insert_id = 0;
  {
    auto guard = stripes_.lock(hash);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second.last_used = ++shard.clock;
      future = it->second.future;  // copy out, then wait outside the lock
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      future = promise.get_future().share();
      my_insert_id = ++shard.clock;
      // bytes stays 0 until the solve finishes — eviction happens on
      // completion, when this entry's true size is known.
      shard.map.emplace(key, Entry{future, my_insert_id, my_insert_id, 0});
      owner = true;
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (owner) {
    // Solve outside the stripe lock: other keys on this shard stay
    // resolvable, and waiters on THIS key block on the future instead.
    try {
      TablePtr table = solve_shared(req, pool);
      const std::size_t table_bytes = table->bytes();
      promise.set_value(std::move(table));
      auto guard = stripes_.lock(hash);
      auto it = shard.map.find(key);
      // Record the bytes only on OUR entry — a concurrent clear() may have
      // dropped it, or a clear()+re-request replaced it with a fresh
      // in-flight entry whose own completion will do its own accounting.
      if (it != shard.map.end() && it->second.insert_id == my_insert_id) {
        it->second.bytes = table_bytes;
        shard.bytes += table_bytes;
        evict_excess_locked(shard, key);
      }
    } catch (...) {
      promise.set_exception(std::current_exception());
      auto guard = stripes_.lock(hash);
      auto it = shard.map.find(key);
      // Erase the entry only if it is a *failed* one (ours, or another
      // failed attempt) — a concurrent clear()+re-solve may already have
      // replaced it with a healthy or still-running entry to keep.
      if (it != shard.map.end() &&
          it->second.future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
        try {
          (void)it->second.future.get();
        } catch (...) {
          shard.bytes -= it->second.bytes;
          shard.map.erase(it);
        }
      }
      throw;
    }
  }
  return future.get();  // rethrows the owner's exception for waiters
}

void SolveCache::evict_excess_locked(Shard& shard, const SolveKey& keep) {
  // Only finished entries (bytes > 0) are candidates: evicting an in-flight
  // entry frees nothing (its waiters hold their own shared_future copies and
  // its size is still unknown), and `keep` — the table whose completion
  // triggered this pass — always survives, so a single oversized table
  // parks in its shard instead of thrashing.
  const std::size_t budget = per_shard_budget_.load(std::memory_order_relaxed);
  while (shard.bytes > budget) {
    auto victim = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->second.bytes == 0 || it->first == keep) continue;
      if (victim == shard.map.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == shard.map.end()) break;  // nothing evictable remains
    shard.bytes -= victim->second.bytes;
    shard.map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

SolveCacheStats SolveCache::stats() const {
  SolveCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    s.entries += shards_[i].map.size();
    s.resident_bytes += shards_[i].bytes;
  }
  return s;
}

void SolveCache::clear() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    shards_[i].map.clear();
    shards_[i].bytes = 0;
  }
}

}  // namespace nowsched::solver
