// O(P·N²) direct evaluation of the minimax recurrence. Kept as the oracle
// the fast solver is validated against; use solve_fast for real lifespans.
#pragma once

#include "solver/value_table.h"

namespace nowsched::solver {

/// Fills W(p)[L] for all p in [0, max_p], L in [0, max_lifespan] by scanning
/// every period length t in [1, L] at every state.
ValueTable solve_reference(int max_p, Ticks max_lifespan, const Params& params);

}  // namespace nowsched::solver
