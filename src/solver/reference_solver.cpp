#include "solver/reference_solver.h"

#include <algorithm>

namespace nowsched::solver {

ValueTable solve_reference(int max_p, Ticks max_lifespan, const Params& params) {
  ValueTable table(max_p, max_lifespan, params);
  const Ticks c = params.c;

  auto level0 = table.mutable_level(0);
  for (Ticks l = 0; l <= max_lifespan; ++l) {
    level0[static_cast<std::size_t>(l)] = positive_sub(l, c);
  }

  for (int p = 1; p <= max_p; ++p) {
    auto cur = table.mutable_level(p);
    auto prev = table.level(p - 1);
    cur[0] = 0;
    for (Ticks l = 1; l <= max_lifespan; ++l) {
      Ticks best = 0;
      for (Ticks t = 1; t <= l; ++t) {
        const auto rest = static_cast<std::size_t>(l - t);
        const Ticks no_interrupt = positive_sub(t, c) + cur[rest];
        const Ticks interrupted = prev[rest];
        best = std::max(best, std::min(no_interrupt, interrupted));
      }
      cur[static_cast<std::size_t>(l)] = best;
    }
  }
  return table;
}

}  // namespace nowsched::solver
