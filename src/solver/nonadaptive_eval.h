// Exact adversary best response against a *committed* (non-adaptive)
// schedule, under the paper's §2.2 semantics: after an interrupt at period i
// the owner of A continues with the tail t_{i+1}..t_m, except that after the
// p-th interrupt the remainder of the opportunity is run as ONE long period.
//
//   W(S) = Σ_{k∉I} (t_k ⊖ c)  +  (U − T_{i_p}) ⊖ c
//
// where I = {i_1 < ... < i_p} are the interrupted periods (all interrupts
// placed at last instants; Obs (a)). The adversary may also use fewer than
// p interrupts, in which case the long-period rule never triggers.
#pragma once

#include <cstddef>
#include <vector>

#include "core/schedule.h"
#include "core/types.h"

namespace nowsched::solver {

struct NonAdaptiveBestResponse {
  Ticks value = 0;                           ///< guaranteed work of the schedule
  std::vector<std::size_t> killed_periods;   ///< 0-based, ascending
};

/// O(m·p) DP over (period index, interrupts left). Requires
/// sched.total() == lifespan.
NonAdaptiveBestResponse nonadaptive_best_response(const EpisodeSchedule& sched,
                                                  Ticks lifespan, int p,
                                                  const Params& params);

/// Convenience: just the guaranteed work.
Ticks nonadaptive_guaranteed_work(const EpisodeSchedule& sched, Ticks lifespan, int p,
                                  const Params& params);

struct EqualPeriodSearch {
  std::size_t best_m = 1;
  Ticks best_value = 0;
  std::vector<Ticks> value_by_m;  ///< value_by_m[m-1] = work with m equal periods
};

/// Exhaustive search over the number of equal periods m in [1, max_m]
/// (max_m == 0 selects a safe upper bound 4·⌈√(pU/c)⌉ + 8, capped by U).
/// Used to test §3.1's claim that m = ⌊√(pU/c)⌋ "cannot be improved".
EqualPeriodSearch best_equal_period_count(Ticks lifespan, int p, const Params& params,
                                          std::size_t max_m = 0);

}  // namespace nowsched::solver
