#include "solver/table_store.h"

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "util/mmap_file.h"

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace nowsched::solver {

// ---------------------------------------------------------------------------
// ResidentTableStore
// ---------------------------------------------------------------------------

ResidentTableStore::ResidentTableStore(Options options)
    : stripes_(options.shards), shards_(stripes_.stripes()) {
  // An even slice per shard. A slice of 0 is legal: each shard then retains
  // only its most recently used table (the keep-newest guarantee).
  per_shard_budget_ = options.max_bytes / shards_.size();
  max_bytes_ = options.max_bytes;
}

std::shared_ptr<const ValueTable> ResidentTableStore::load(const SolveKey& key) {
  const std::uint64_t hash = key.hash();
  Shard& shard = shards_[stripes_.index_for(hash)];
  auto guard = stripes_.lock(hash);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second.last_used = ++shard.clock;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.table;
}

bool ResidentTableStore::store(const SolveKey& key,
                               const std::shared_ptr<const ValueTable>& table) {
  const std::uint64_t hash = key.hash();
  Shard& shard = shards_[stripes_.index_for(hash)];
  const std::size_t table_bytes = table->bytes();
  auto guard = stripes_.lock(hash);
  Entry& entry = shard.map[key];
  shard.bytes -= entry.bytes;  // 0 for a fresh entry; the old size on refresh
  entry.table = table;
  entry.bytes = table_bytes;
  entry.last_used = ++shard.clock;
  shard.bytes += table_bytes;
  evict_excess_locked(shard, key);
  stores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResidentTableStore::evict_excess_locked(Shard& shard, const SolveKey& keep) {
  // `keep` — the table whose arrival triggered this pass — always survives,
  // so a single oversized table parks in its shard instead of thrashing.
  const std::size_t budget = per_shard_budget_.load(std::memory_order_relaxed);
  while (shard.bytes > budget) {
    auto victim = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == shard.map.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == shard.map.end()) break;  // nothing evictable remains
    shard.bytes -= victim->second.bytes;
    shard.map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResidentTableStore::set_max_bytes(std::size_t max_bytes) {
  max_bytes_.store(max_bytes, std::memory_order_relaxed);
  per_shard_budget_.store(max_bytes / shards_.size(), std::memory_order_relaxed);
  // Shrinks take effect now, not on the next store: walk every shard and
  // evict down to the new slice, keeping the most recently used table (the
  // same guarantee the store path gives).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    Shard& shard = shards_[i];
    if (shard.map.empty()) continue;
    auto newest = shard.map.begin();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->second.last_used > newest->second.last_used) newest = it;
    }
    evict_excess_locked(shard, newest->first);
  }
}

void ResidentTableStore::clear() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    shards_[i].map.clear();
    shards_[i].bytes = 0;
  }
}

TableStoreStats ResidentTableStore::stats() const {
  TableStoreStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::mutex> guard(stripes_.stripe(i));
    s.entries += shards_[i].map.size();
    s.bytes += shards_[i].bytes;
  }
  return s;
}

// ---------------------------------------------------------------------------
// MappedTableStore — the `nowsched-table v1` format
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'N', 'W', 'T', 'A', 'B', 'L', 'E', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr const char* kFileSuffix = ".nwt";

/// The fixed 64-byte file header (field table in table_store.h). Packed by
/// construction: 8 + 4 + 4 + 3×8 + 3×8 leaves no padding holes, which the
/// static_asserts pin — checksums over struct bytes must be layout-stable.
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::int64_t max_p;
  std::int64_t max_lifespan;
  std::int64_t c;
  std::uint64_t slab_bytes;
  std::uint64_t slab_checksum;
  std::uint64_t header_checksum;  ///< over the 56 bytes preceding this field
};
static_assert(sizeof(FileHeader) == 64, "nowsched-table v1 header is 64 bytes");
static_assert(std::is_trivially_copyable_v<FileHeader>);
constexpr std::size_t kHeaderChecksumSpan = offsetof(FileHeader, header_checksum);
static_assert(kHeaderChecksumSpan == 56);

FileHeader make_header(const SolveKey& key, std::size_t slab_bytes,
                       std::uint64_t slab_checksum) {
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.reserved = 0;
  header.max_p = key.max_p;
  header.max_lifespan = key.max_lifespan;
  header.c = key.c;
  header.slab_bytes = static_cast<std::uint64_t>(slab_bytes);
  header.slab_checksum = slab_checksum;
  header.header_checksum = util::checksum_bytes(&header, kHeaderChecksumSpan);
  return header;
}

/// Full-format validation against a mapped file. Returns the reason the
/// file is defective, or empty when it is a well-formed `nowsched-table v1`
/// whose header matches `expect` (when given). On success fills *out_header.
std::string check_mapped(const util::MappedFile& file, const SolveKey* expect,
                         FileHeader* out_header) {
  if (file.size() < sizeof(FileHeader)) {
    return "truncated: " + std::to_string(file.size()) +
           " bytes, header needs " + std::to_string(sizeof(FileHeader));
  }
  FileHeader header;
  std::memcpy(&header, file.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return "bad magic (not a nowsched-table file)";
  }
  if (header.version != kFormatVersion) {
    return "format version " + std::to_string(header.version) +
           " (this build reads v" + std::to_string(kFormatVersion) + ")";
  }
  if (header.header_checksum !=
      util::checksum_bytes(file.data(), kHeaderChecksumSpan)) {
    return "header checksum mismatch";
  }
  if (header.max_p < 0 || header.max_lifespan < 0 || header.c < 1) {
    return "header key fields out of range";
  }
  const std::size_t expected_slab =
      (static_cast<std::size_t>(header.max_p) + 1) *
      (static_cast<std::size_t>(header.max_lifespan) + 1) * sizeof(Ticks);
  if (header.slab_bytes != expected_slab) {
    return "slab_bytes " + std::to_string(header.slab_bytes) +
           " disagrees with header dims (" + std::to_string(expected_slab) + ")";
  }
  if (file.size() != sizeof(FileHeader) + header.slab_bytes) {
    return "file is " + std::to_string(file.size()) + " bytes, header promises " +
           std::to_string(sizeof(FileHeader) + header.slab_bytes);
  }
  if (expect != nullptr &&
      (header.max_p != expect->max_p ||
       header.max_lifespan != expect->max_lifespan || header.c != expect->c)) {
    return "header key (p=" + std::to_string(header.max_p) + ", L=" +
           std::to_string(header.max_lifespan) + ", c=" +
           std::to_string(header.c) + ") does not match the requested key";
  }
  if (header.slab_checksum !=
      util::checksum_bytes(file.data() + sizeof(FileHeader),
                           static_cast<std::size_t>(header.slab_bytes))) {
    return "slab checksum mismatch";
  }
  if (out_header != nullptr) *out_header = header;
  return {};
}

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace

MappedTableStore::MappedTableStore(Options options)
    : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw std::runtime_error("MappedTableStore: empty store directory");
  }
  std::error_code ec;
  if (options_.read_only) {
    if (!std::filesystem::is_directory(options_.dir, ec)) {
      throw std::runtime_error("MappedTableStore: read-only store directory '" +
                               options_.dir + "' does not exist");
    }
  } else {
    std::filesystem::create_directories(options_.dir, ec);
    if (ec || !std::filesystem::is_directory(options_.dir)) {
      throw std::runtime_error("MappedTableStore: cannot create store directory '" +
                               options_.dir + "': " + ec.message());
    }
  }
}

std::string MappedTableStore::file_name(const SolveKey& key) {
  return hex16(key.hash()) + kFileSuffix;
}

std::string MappedTableStore::path_for(const SolveKey& key) const {
  return (std::filesystem::path(options_.dir) / file_name(key)).string();
}

std::shared_ptr<const ValueTable> MappedTableStore::load(const SolveKey& key) {
  const std::string path = path_for(key);
  std::unique_ptr<util::MappedFile> file = util::MappedFile::open(path);
  if (file == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  FileHeader header;
  const std::string defect = check_mapped(*file, &key, &header);
  if (!defect.empty()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!options_.read_only && options_.purge_rejected) {
      std::error_code ec;
      std::filesystem::remove(path, ec);  // best effort; next spill heals
    }
    return nullptr;
  }
  // Zero-copy: the table is a view over the mapping's own payload bytes,
  // and the shared MappedFile keepalive pins the mapping for as long as any
  // copy of the table (or any policy holding it) lives.
  std::shared_ptr<const util::MappedFile> keepalive(std::move(file));
  const Ticks* slab =
      reinterpret_cast<const Ticks*>(keepalive->data() + sizeof(FileHeader));
  const std::size_t count =
      static_cast<std::size_t>(header.slab_bytes) / sizeof(Ticks);
  auto table = std::make_shared<const ValueTable>(ValueTable::view(
      static_cast<int>(header.max_p), header.max_lifespan, Params{header.c},
      std::span<const Ticks>(slab, count), keepalive));
  hits_.fetch_add(1, std::memory_order_relaxed);
  return table;
}

bool MappedTableStore::store(const SolveKey& key,
                             const std::shared_ptr<const ValueTable>& table) {
  if (options_.read_only) {
    store_skips_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::string path = path_for(key);
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    // Build-once: somebody already published this key. A corrupt survivor
    // is healed through load()'s purge path, not overwritten here.
    store_skips_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::span<const Ticks> slab = table->slab();
  const std::size_t slab_bytes = slab.size_bytes();
  const FileHeader header = make_header(
      key, slab_bytes, util::checksum_bytes(slab.data(), slab_bytes));

  std::vector<unsigned char> payload(sizeof(FileHeader) + slab_bytes);
  std::memcpy(payload.data(), &header, sizeof(header));
  std::memcpy(payload.data() + sizeof(FileHeader), slab.data(), slab_bytes);

  // Process-unique temp tag: two processes (or two tenant caches in one
  // process) racing a spill must not share a temp file, or interleaved
  // writes could publish garbage through a valid rename.
  const std::string tag =
#if defined(_WIN32)
      std::to_string(static_cast<unsigned long>(::_getpid())) +
#else
      std::to_string(static_cast<unsigned long>(::getpid())) +
#endif
      "." + std::to_string(write_tag_.fetch_add(1, std::memory_order_relaxed));
  if (!util::atomic_write_file(path, payload.data(), payload.size(), tag)) {
    return false;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MappedTableStore::clear() {
  if (options_.read_only) return;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() == kFileSuffix) {
      std::error_code remove_ec;
      std::filesystem::remove(entry.path(), remove_ec);
    }
  }
}

TableStoreStats MappedTableStore::stats() const {
  TableStoreStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.store_skips = store_skips_.load(std::memory_order_relaxed);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() != kFileSuffix) continue;
    std::error_code size_ec;
    const auto size = std::filesystem::file_size(entry.path(), size_ec);
    if (size_ec) continue;
    ++s.entries;
    s.bytes += size > sizeof(FileHeader)
                   ? static_cast<std::size_t>(size) - sizeof(FileHeader)
                   : 0;
  }
  return s;
}

std::string MappedTableStore::validate_file(const std::string& path,
                                            const SolveKey* expect) {
  std::unique_ptr<util::MappedFile> file = util::MappedFile::open(path);
  if (file == nullptr) return "cannot open '" + path + "'";
  return check_mapped(*file, expect, nullptr);
}

}  // namespace nowsched::solver
