// TableStore — the storage-backend interface beneath solver::SolveCache,
// and its two backends: the resident RAM tier (ResidentTableStore) and the
// content-addressed, memory-mapped persistent tier (MappedTableStore).
//
// The cache used to BE its resident tier; now the tier is a backend behind
// a narrow interface (load / store / clear / stats), which is what lets a
// second, persistent tier slot underneath it: RAM hit → mapped-store hit →
// solve + spill, with identical results in every tier by construction
// (solves are deterministic, stored slabs are checksummed, and a mapped
// table is an immutable ValueTable view over the file's own pages).
//
// ## On-disk format: `nowsched-table v1`
//
// One file per canonical SolveKey, named by the key's platform-stable
// content hash (`<hex16 of SolveKey::hash()>.nwt`), laid out as:
//
//   | offset | size | field                                            |
//   |--------|------|--------------------------------------------------|
//   | 0      | 8    | magic "NWTABLE1"                                 |
//   | 8      | 4    | format version (1)                               |
//   | 12     | 4    | reserved (0)                                     |
//   | 16     | 8    | key.max_p        (int64)                         |
//   | 24     | 8    | key.max_lifespan (int64)                         |
//   | 32     | 8    | key.c            (int64)                         |
//   | 40     | 8    | slab_bytes — payload length                      |
//   | 48     | 8    | slab checksum (util::checksum_bytes)             |
//   | 56     | 8    | header checksum over bytes [0, 56)               |
//   | 64     | ...  | the raw level-major slab, slab_bytes long        |
//
// Same format discipline as the `nowsched-scenario v1` replay files:
// versioned, strict, round-trip tested. Strictness is total — ANY defect
// (short file, wrong magic, stale version, either checksum, header key
// fields that do not match the file's name/request, payload length that
// disagrees with the dims or the file size) REJECTS the file and reads as a
// cache miss; the caller falls back to a fresh solve and the corrupt file
// is unlinked so the next spill heals the store. Integers are stored in
// native byte order: a store directory is shared between processes on one
// host (the multi-process scale-out story), not shipped between
// architectures.
//
// ## Build-once writes, mmap reads
//
// store() publishes via temp-file + atomic rename (util::atomic_write_file)
// and skips keys whose file already exists, so N processes racing to bake
// one key produce one valid entry — every writer that publishes publishes
// the same complete bytes (deterministic solver), and rename is atomic, so
// a reader NEVER sees a torn file. load() maps the file read-only and wraps
// the payload in a zero-copy ValueTable view whose keepalive pins the
// mapping; the kernel page cache makes the second and later mappings of a
// table effectively free, across processes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "solver/solve_key.h"
#include "solver/value_table.h"
#include "util/striped_lock.h"

namespace nowsched::solver {

/// Lifetime counters of one backend. Monotone; `entries`/`bytes` are the
/// point-in-time resident (or on-disk) set.
struct TableStoreStats {
  std::uint64_t hits = 0;        ///< load() calls that returned a table
  std::uint64_t misses = 0;      ///< load() calls with no entry for the key
  std::uint64_t rejected = 0;    ///< load() found an entry but refused it
                                 ///< (corrupt / truncated / version or key
                                 ///< mismatch) — counted separately from
                                 ///< misses so store rot is observable
  std::uint64_t stores = 0;      ///< store() calls that persisted a table
  std::uint64_t store_skips = 0; ///< store() no-ops: entry already present
                                 ///< (build-once) or backend read-only
  std::uint64_t evictions = 0;   ///< entries dropped for a byte budget
  std::size_t entries = 0;
  std::size_t bytes = 0;         ///< logical slab bytes held by the backend
};

/// The narrow storage interface SolveCache tiers sit behind. Implementations
/// must be safe to call from many threads concurrently, must return tables
/// that are bit-identical to a fresh solve of the key (or nothing), and must
/// treat store() as idempotent per key.
class TableStore {
 public:
  virtual ~TableStore() = default;

  /// The table for `key`, or nullptr when this backend cannot supply it.
  /// Never throws on a defective entry — a table the backend cannot VOUCH
  /// for is a miss, and the caller solves fresh.
  virtual std::shared_ptr<const ValueTable> load(const SolveKey& key) = 0;

  /// Offers a finished table for retention. Returns true when the backend
  /// newly retained/persisted it, false when it declined (already present,
  /// read-only, I/O failure). Must never fail the caller: a spill that
  /// cannot be written only costs the next process a solve.
  virtual bool store(const SolveKey& key,
                     const std::shared_ptr<const ValueTable>& table) = 0;

  /// Drops every entry this backend holds (no-op for read-only backends).
  virtual void clear() = 0;

  virtual TableStoreStats stats() const = 0;

  /// Short backend identifier for logs/benches ("resident", "mapped").
  virtual const char* name() const noexcept = 0;
};

/// The RAM tier: a sharded map of finished tables under an exact byte
/// budget with per-shard LRU eviction — the storage half of the old
/// SolveCache, now behind the backend interface. Sharding mirrors the
/// cache's in-flight striping (same platform-stable key hash), the budget
/// is split evenly across shards, and every shard always keeps its most
/// recently used table even when that table alone exceeds the slice (a
/// cache that cannot hold the table it just built would thrash to zero
/// hits). set_max_bytes re-budgets live — the service layer's per-tenant
/// quota resize.
class ResidentTableStore final : public TableStore {
 public:
  struct Options {
    /// Stripe/shard count; rounded up to a power of two.
    std::size_t shards = 8;
    /// Total byte budget for resident tables across all shards.
    std::size_t max_bytes = 64u << 20;  // 64 MiB
  };

  ResidentTableStore() : ResidentTableStore(Options{}) {}
  explicit ResidentTableStore(Options options);

  ResidentTableStore(const ResidentTableStore&) = delete;
  ResidentTableStore& operator=(const ResidentTableStore&) = delete;

  /// A resident table is a hit AND a recency touch (it becomes its shard's
  /// newest-used entry).
  std::shared_ptr<const ValueTable> load(const SolveKey& key) override;

  /// Retains the table and immediately evicts least-recently-used tables
  /// from the shard until it fits its slice again; the just-stored table
  /// always survives the pass. Storing an already-present key refreshes the
  /// entry (and its recency) rather than duplicating it.
  bool store(const SolveKey& key,
             const std::shared_ptr<const ValueTable>& table) override;

  void clear() override;
  TableStoreStats stats() const override;
  const char* name() const noexcept override { return "resident"; }

  /// Re-budgets to `max_bytes` total (re-split evenly across shards) and
  /// immediately evicts every shard down to its new slice, keeping each
  /// shard's most recently used table. Growing never evicts.
  void set_max_bytes(std::size_t max_bytes);

  std::size_t max_bytes() const noexcept {
    return max_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t shard_count() const noexcept { return stripes_.stripes(); }

 private:
  struct KeyHash {
    std::size_t operator()(const SolveKey& key) const noexcept {
      return static_cast<std::size_t>(key.hash());
    }
  };

  struct Entry {
    std::shared_ptr<const ValueTable> table;
    std::uint64_t last_used = 0;  ///< shard-local LRU clock value
    std::size_t bytes = 0;
  };

  struct Shard {
    std::unordered_map<SolveKey, Entry, KeyHash> map;
    std::uint64_t clock = 0;  ///< monotone per-shard use counter
    std::size_t bytes = 0;    ///< Σ entry.bytes of this map
  };

  /// Evicts LRU entries until the shard fits its slice or only `keep`
  /// remains (the keep-newest guarantee).
  void evict_excess_locked(Shard& shard, const SolveKey& keep);

  // mutable: stats() is logically const but must lock shard stripes.
  mutable util::StripedMutex stripes_;
  std::vector<Shard> shards_;
  // Atomic: set_max_bytes rewrites budgets while other threads evict under
  // their own stripe locks (relaxed is enough — eviction against a briefly
  // stale budget is corrected by the resize's own eviction pass).
  std::atomic<std::size_t> per_shard_budget_;
  std::atomic<std::size_t> max_bytes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// The persistent tier: a directory of `nowsched-table v1` files (format
/// above), content-addressed by canonical key hash. load() mmaps read-only
/// and returns a zero-copy ValueTable view; store() is build-once via
/// atomic rename. Thread-safe and multi-process-safe by construction (see
/// the header comment); every defective file is rejected, counted, and —
/// unless the store is mounted read-only — unlinked so a later spill
/// rebuilds it.
class MappedTableStore final : public TableStore {
 public:
  struct Options {
    /// Store directory; created (with parents) when missing unless
    /// read_only. Files land directly inside it.
    std::string dir;
    /// A warm shared mount: store() and clear() become no-ops and rejected
    /// files are left in place (some other writer owns the directory).
    bool read_only = false;
    /// Unlink files that fail validation so the store self-heals on the
    /// next spill. Ignored (off) when read_only.
    bool purge_rejected = true;
  };

  /// Throws std::runtime_error when the directory cannot be created (or,
  /// read-only, does not exist) — a misconfigured store path is a setup
  /// bug, unlike the per-file defects load() absorbs.
  explicit MappedTableStore(Options options);

  MappedTableStore(const MappedTableStore&) = delete;
  MappedTableStore& operator=(const MappedTableStore&) = delete;

  /// Maps the key's file, validates the full format (magic, version, both
  /// checksums, header-vs-key identity, payload length vs dims AND file
  /// size), and returns a read-only view table pinning the mapping. Any
  /// defect → nullptr (and the `rejected` counter; the file is unlinked
  /// unless read_only or !purge_rejected). Validation reads the whole
  /// payload once (the checksum pass); later access is served from the
  /// page cache.
  std::shared_ptr<const ValueTable> load(const SolveKey& key) override;

  /// Build-once spill: no-op when the key's file already exists or the
  /// store is read-only; otherwise serializes header + slab and publishes
  /// atomically. I/O failures return false and are counted, never thrown.
  bool store(const SolveKey& key,
             const std::shared_ptr<const ValueTable>& table) override;

  /// Removes every store file in the directory (no-op when read-only).
  void clear() override;

  /// entries/bytes scan the directory (logical slab bytes, headers
  /// excluded) — stats() is for benches and operators, not hot paths.
  TableStoreStats stats() const override;
  const char* name() const noexcept override { return "mapped"; }

  const std::string& dir() const noexcept { return options_.dir; }
  bool read_only() const noexcept { return options_.read_only; }

  /// Content-addressed file name of a canonical key:
  /// `<hex16 of key.hash()>.nwt`.
  static std::string file_name(const SolveKey& key);
  std::string path_for(const SolveKey& key) const;

  /// Full-format validation verdict for one store file: empty string when
  /// valid, else a human-readable reason. With `expect`, also enforces that
  /// the header's key fields match (the header/key-mismatch check load()
  /// applies). Exposed for cache_bake's verification pass and the
  /// corruption tests.
  static std::string validate_file(const std::string& path,
                                   const SolveKey* expect = nullptr);

 private:
  Options options_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> store_skips_{0};
  std::atomic<std::uint64_t> write_tag_{0};  ///< per-process temp-name nonce
};

}  // namespace nowsched::solver
