// Recovering optimal episode-schedules and verifying Thm 4.3 structure from
// the W(p)[L] value tables.
#pragma once

#include <vector>

#include "core/policy.h"
#include "core/schedule.h"
#include "solver/value_table.h"

namespace nowsched::solver {

/// The committed optimal episode for state (p, L): repeatedly pick the
/// period length attaining V_p and follow the no-interrupt branch until the
/// lifespan is exhausted. Ties prefer the longest period (this matches the
/// paper's decreasing-period shape and avoids degenerate 1-tick chains).
///
/// Cost: O(m log L) — each period is found by binary search on the same
/// monotone A/B crossover structure the fast solver uses (A(t) non-
/// decreasing past c, B(t) non-increasing), so extraction is cheap enough
/// to run per episode inside batched simulations. best_period_length_linear
/// is the O(L) scan it replaced, kept as the oracle for the equivalence
/// test (tests/solver_extract_test.cpp): both pick the identical (longest)
/// attaining period on every state.
EpisodeSchedule extract_episode(const ValueTable& table, int p, Ticks lifespan);

/// Longest t in [1, L] attaining V_p(L), by O(log L) crossover search.
/// Requires 1 <= p <= table.max_interrupts() and 1 <= L <= max_lifespan.
Ticks best_period_length(const ValueTable& table, int p, Ticks lifespan);

/// The O(L) reference scan for best_period_length (bit-identical choice).
Ticks best_period_length_linear(const ValueTable& table, int p, Ticks lifespan);

/// Thm 4.3 predicts, for the early ("non-immune") periods,
///   t_k = c + W(p−1)[U − T_k] − W(p−1)[U − T_{k+1}]        (1-based k),
/// i.e. each period equalizes the impact of the interrupts it exposes.
/// Returns per-period residuals t_k − (c + ΔW) for a given episode; small
/// residuals on the early periods corroborate the theorem on the grid.
std::vector<Ticks> equalization_residuals(const ValueTable& table,
                                          const EpisodeSchedule& episode, int p,
                                          Ticks lifespan);

/// Optimal adaptive policy backed by a value table. episode(L, q) uses
/// level min(q, max_p). Lifespans above table.max_lifespan() throw.
class OptimalPolicy final : public SchedulingPolicy {
 public:
  explicit OptimalPolicy(std::shared_ptr<const ValueTable> table);
  std::string name() const override { return "dp-optimal"; }
  EpisodeSchedule episode(Ticks residual, int interrupts_left,
                          const Params& params) const override;

 private:
  std::shared_ptr<const ValueTable> table_;
};

}  // namespace nowsched::solver
