// The canonical identity of a W(p)[L] solve — shared vocabulary of the
// solve cache (solver/solve_cache.h) and every TableStore backend
// (solver/table_store.h).
//
// Extracted from solve_cache.h so the storage backends can be keyed on
// SolveKey without depending on the cache that fronts them; solve_cache.h
// re-exports this header, so existing includes keep working.
#pragma once

#include <algorithm>
#include <cstdint>

#include "core/types.h"
#include "util/hash.h"

namespace nowsched::solver {

/// What a caller wants solved, in caller terms (pre-canonicalization).
struct SolveRequest {
  int max_p = 0;
  Ticks max_lifespan = 0;
  Params params;
};

/// The canonical identity of a solve: two requests with equal SolveKeys are
/// served by one table. Produced by canonical_key; compared field-wise.
struct SolveKey {
  int max_p = 0;
  Ticks max_lifespan = 0;
  Ticks c = 1;

  bool operator==(const SolveKey&) const = default;

  /// Platform-stable hash (util::hash_combine, not std::hash) so shard
  /// assignment — and the content-addressed store-file name derived from it
  /// — is identical across standard libraries.
  std::uint64_t hash() const noexcept {
    std::uint64_t h = util::hash_combine(0, static_cast<std::uint64_t>(max_p));
    h = util::hash_combine(h, static_cast<std::uint64_t>(max_lifespan));
    return util::hash_combine(h, static_cast<std::uint64_t>(c));
  }
};

/// Canonicalizes a request: clamps max_p / max_lifespan below at 0 and
/// rounds max_lifespan up to the next multiple of c (see solve_cache.h for
/// why that is transparent to every reader of the table). Throws
/// std::invalid_argument when params are invalid, like the solvers do.
inline SolveKey canonical_key(const SolveRequest& req) {
  require_valid(req.params);
  SolveKey key;
  key.max_p = std::max(req.max_p, 0);
  key.c = req.params.c;
  const Ticks l = std::max<Ticks>(req.max_lifespan, 0);
  key.max_lifespan = ((l + key.c - 1) / key.c) * key.c;
  return key;
}

}  // namespace nowsched::solver
