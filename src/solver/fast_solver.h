// Crossover solver for W(p)[L] — O(P·N) two-pointer/SIMD kernel with an
// O(P·N·log N) legacy kernel kept as an in-tree reference.
//
// For t in [c, L] write
//   A(t) = (t − c) + V_p(L − t)   — non-decreasing in t (V_p is 1-Lipschitz),
//   B(t) = V_{p−1}(L − t)         — non-increasing in t.
// max_t min(A, B) is attained adjacent to the A/B crossover. Period lengths
// t < c contribute exactly V_p(L − t) <= V_p(L − 1) and t = 1 attains
// V_p(L − 1) (the adversary never spends an interrupt on an unproductive
// period), so
//   V_p(L) = max( V_p(L − 1),  max_{t in [c, L]} min(A, B) ).
//
// The production kernels exploit that the crossover index is monotone in L,
// replacing the per-lifespan binary search with an amortized O(1) advance
// and a vectorizable blocked two-phase scan (crossover pass + prefix-max
// carry merge) — the derivation and exactness argument live in
// solver/fill_kernel.h, the ISA selection rules below. All kernels are
// bit-identical by construction and cross-checked by
// tests/solver_simd_kernel_test.cpp and the conformance fuzzer.
//
// Parallel structure: cut every level into blocks of c consecutive
// lifespans. Within a block the crossover scans read V_p only at indices
// l − t <= l − c, i.e. strictly below the block start, and V_{p−1} at the
// same indices — so cell (p, b) of the (level, block) grid depends on
// exactly two cells: (p, b−1) for the carry and its own level's earlier
// values, and (p−1, b−1) for the previous level's values. solve_fast runs
// the whole grid as one task-graph wavefront on util::ThreadPool::run_dag —
// no barrier anywhere; after a one-block pipeline fill, all max_p levels
// advance concurrently. DESIGN.md "Parallel solver architecture" has the
// diagram and the measured numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "solver/value_table.h"
#include "util/thread_pool.h"

namespace nowsched::solver {

/// The level-fill kernels compiled into the library. All produce
/// bit-identical tables; they differ only in speed.
enum class SolverKernel {
  kLegacy,  ///< per-lifespan binary search (pre-SIMD kernel, kept as the
            ///< in-tree reference and the E10 speedup baseline)
  kScalar,  ///< two-pointer two-phase scan, width-1 lanes (every platform)
  kAvx2,    ///< two-phase scan on 4 × int64 AVX2 lanes (x86-64, runtime-gated)
  kNeon,    ///< two-phase scan on 2 × int64 AdvSIMD lanes (AArch64)
};

/// Stable lower-case name ("legacy", "scalar", "avx2", "neon") — the
/// vocabulary of NOWSCHED_KERNEL and of bench/DESIGN reporting.
const char* solver_kernel_name(SolverKernel kernel) noexcept;

/// Inverse of solver_kernel_name; nullopt for anything else.
std::optional<SolverKernel> solver_kernel_from_name(std::string_view name) noexcept;

/// True when `kernel` is both compiled into this binary and runnable on the
/// current CPU. kLegacy and kScalar are always supported.
bool solver_kernel_supported(SolverKernel kernel) noexcept;

/// Every supported kernel, in preference order (fastest first).
std::vector<SolverKernel> supported_solver_kernels();

/// The kernel solve_fast will use right now. Resolution order:
///   1. a force_solver_kernel() override (tests/benches),
///   2. NOWSCHED_KERNEL ("legacy" | "scalar" | "avx2" | "neon" | "auto"),
///      read once per process; malformed or unsupported values warn once on
///      stderr and fall through to auto,
///   3. auto: the fastest supported SIMD kernel, else scalar. Never legacy.
SolverKernel active_solver_kernel();

/// Pins active_solver_kernel() to `kernel` until clear_forced_solver_kernel.
/// Throws std::invalid_argument if the kernel is not supported here. Not
/// synchronized against concurrent solves — flip it only between solves.
void force_solver_kernel(SolverKernel kernel);
void clear_forced_solver_kernel() noexcept;

/// Parses a NOWSCHED_KERNEL-style value. Returns the kernel to pin, or
/// nullopt for "auto"/unset, leaving *warning empty; on a malformed or
/// unsupported value returns nullopt and stores a one-line diagnostic in
/// *warning. Exposed for tests; active_solver_kernel() applies it to the
/// real environment variable.
std::optional<SolverKernel> solver_kernel_from_env_value(const char* value,
                                                         std::string* warning);

/// Runs one level-fill over lifespans [lo, hi) with an explicit kernel:
///   cur[l] = max( crossover_best(l), cur[l − 1] )   for l in [lo, hi).
/// Requires 1 <= lo <= hi <= max index + 1 and cur/prev final below lo (the
/// same contract the wavefront cells rely on). When `scan_steps` is non-null
/// the kernel's probe count is accumulated into it — the deterministic
/// quantity the cost model predicts (see modeled_scan_steps). Exposed for
/// the differential battery and the calibration path; solve_fast dispatches
/// through it.
void run_fill_kernel(SolverKernel kernel, std::span<Ticks> cur,
                     std::span<const Ticks> prev, Ticks lo, Ticks hi, Ticks c,
                     std::size_t* scan_steps = nullptr);

/// Modeled probe count for one run_fill_kernel(kernel, …, lo, hi, c) call.
///   kLegacy:     lifespans with l < c cost O(1); the rest binary-search
///                [c, l], ~log2(l − c) probes each — summed in closed form
///                (NOT the old kN·log2(kN) model, which overstated the
///                depth of every scan by using the table size for the
///                search range).
///   two-pointer: amortized-constant probes per lifespan.
/// Pinned against measured counts by tests/solver_simd_kernel_test.cpp.
double modeled_scan_steps(SolverKernel kernel, Ticks c, Ticks lo, Ticks hi);

/// One calibrated scan-step cost, tagged with the kernel it was measured
/// under and how trustworthy the number is.
struct ScanCalibration {
  SolverKernel kernel = SolverKernel::kScalar;
  double step_ns = 0.0;
  /// "measured", or "clamped-low"/"clamped-high" when the raw measurement
  /// fell outside the plausible range for one probe (e.g. under TSan, a
  /// debugger, or heavy load) and was clamped to the nearest bound.
  const char* source = "unmeasured";
  /// Bumped on every (re)measurement — lets tests assert recalibration
  /// actually happened.
  std::uint64_t generation = 0;
};

/// The current calibration for the active kernel. Measured lazily on first
/// use and re-measured automatically whenever the active kernel changes;
/// cached otherwise. Thread-safe.
ScanCalibration scan_calibration();

/// Throws away the cached calibration and measures afresh (benches call
/// this after warm-up; tests after forcing a kernel). Returns the new
/// calibration. Thread-safe.
ScanCalibration recalibrate_scan_cost();

/// How solve_fast decides between the sequential and the wavefront path.
enum class ParallelMode {
  kAuto,            ///< engage the wavefront iff plan_wavefront() says it pays
  kForceWavefront,  ///< always take the wavefront path (tests/benches); falls
                    ///< back to sequential only when `pool` is null
  kForceSequential, ///< never parallelize, even with a pool
};

/// The engagement decision for a prospective wavefront run, with the
/// calibrated quantities that produced it — benches report these, and the
/// ROADMAP's crossover notes are written from them.
struct WavefrontPlan {
  bool engage = false;
  std::size_t num_blocks = 0;    ///< ceil(max_lifespan / c) blocks per level
  int width = 0;                 ///< max concurrent cells:
                                 ///< min(max_p, pool size, hardware threads)
  double cell_ns_estimate = 0.0; ///< modeled cost of one (p, block) cell
  double dispatch_ns = 0.0;      ///< measured per-task overhead of `pool`
  ScanCalibration calibration;   ///< the scan-step calibration the estimate
                                 ///< was built from (kernel + source)
  std::string reason;            ///< one-line why (engaged or declined),
                                 ///< including the calibration source
};

/// Decides whether the wavefront path is expected to beat sequential on this
/// grid with this pool. Auto-calibrated, not hardcoded: the per-cell work is
/// modeled from the active kernel's calibrated scan-step cost (see
/// scan_calibration — clamped, kernel-tagged, recalibratable) and compared
/// against the pool's measured per-task dispatch overhead
/// (util::ThreadPool::dispatch_overhead_ns); the DAG width min(max_p, pool,
/// hardware) must also be >= 2 — on a 1-core machine the plan therefore
/// never engages, which is the correct answer there.
WavefrontPlan plan_wavefront(int max_p, Ticks max_lifespan, const Params& params,
                             util::ThreadPool* pool);

/// Fills W(p)[L] for all p in [0, max_p], L in [0, max_lifespan].
///
/// `pool` enables the wavefront-parallel path (subject to `mode`); pass
/// nullptr for strictly serial. The pool is only used through blocking
/// run_dag calls — solve_fast returns with the table complete and all
/// worker writes visible to the caller (see util/thread_pool.h for the
/// happens-before contract). Do not call from inside a task running on the
/// same pool. The level-fill kernel is resolved once per call via
/// active_solver_kernel(); every kernel yields a bit-identical table.
ValueTable solve_fast(int max_p, Ticks max_lifespan, const Params& params,
                      util::ThreadPool* pool = nullptr,
                      ParallelMode mode = ParallelMode::kAuto);

}  // namespace nowsched::solver
