// O(P·N·log N) crossover solver for W(p)[L].
//
// For t in [c, L] write
//   A(t) = (t − c) + V_p(L − t)   — non-decreasing in t (V_p is 1-Lipschitz),
//   B(t) = V_{p−1}(L − t)         — non-increasing in t.
// max_t min(A, B) is attained adjacent to the A/B crossover, found by binary
// search. Period lengths t < c contribute exactly V_p(L − t) <= V_p(L − 1)
// and t = 1 attains V_p(L − 1) (the adversary never spends an interrupt on
// an unproductive period), so
//   V_p(L) = max( V_p(L − 1),  max_{t in [c, L]} min(A, B) ).
//
// Parallel structure: cut every level into blocks of c consecutive
// lifespans. Within a block the crossover scans read V_p only at indices
// l − t <= l − c, i.e. strictly below the block start, and V_{p−1} at the
// same indices — so cell (p, b) of the (level, block) grid depends on
// exactly two cells: (p, b−1) for the carry and its own level's earlier
// values, and (p−1, b−1) for the previous level's values. solve_fast runs
// the whole grid as one task-graph wavefront on util::ThreadPool::run_dag —
// no barrier anywhere; after a one-block pipeline fill, all max_p levels
// advance concurrently. DESIGN.md "Parallel solver architecture" has the
// diagram and the measured numbers.
#pragma once

#include <cstddef>

#include "solver/value_table.h"
#include "util/thread_pool.h"

namespace nowsched::solver {

/// How solve_fast decides between the sequential and the wavefront path.
enum class ParallelMode {
  kAuto,            ///< engage the wavefront iff plan_wavefront() says it pays
  kForceWavefront,  ///< always take the wavefront path (tests/benches); falls
                    ///< back to sequential only when `pool` is null
  kForceSequential, ///< never parallelize, even with a pool
};

/// The engagement decision for a prospective wavefront run, with the
/// calibrated quantities that produced it — benches report these, and the
/// ROADMAP's crossover notes are written from them.
struct WavefrontPlan {
  bool engage = false;
  std::size_t num_blocks = 0;    ///< ceil(max_lifespan / c) blocks per level
  int width = 0;                 ///< max concurrent cells:
                                 ///< min(max_p, pool size, hardware threads)
  double cell_ns_estimate = 0.0; ///< modeled cost of one (p, block) cell
  double dispatch_ns = 0.0;      ///< measured per-task overhead of `pool`
  const char* reason = "";       ///< one-line why (engaged or declined)
};

/// Decides whether the wavefront path is expected to beat sequential on this
/// grid with this pool. Auto-calibrated, not hardcoded: the per-cell work is
/// modeled from a measured scan-step cost (timed once per process) and
/// compared against the pool's measured per-task dispatch overhead
/// (util::ThreadPool::dispatch_overhead_ns); the DAG width min(max_p, pool,
/// hardware) must also be >= 2 — on a 1-core machine the plan therefore
/// never engages, which is the correct answer there. Pure in its inputs
/// apart from the two one-time calibrations.
WavefrontPlan plan_wavefront(int max_p, Ticks max_lifespan, const Params& params,
                             util::ThreadPool* pool);

/// Fills W(p)[L] for all p in [0, max_p], L in [0, max_lifespan].
///
/// `pool` enables the wavefront-parallel path (subject to `mode`); pass
/// nullptr for strictly serial. The pool is only used through blocking
/// run_dag calls — solve_fast returns with the table complete and all
/// worker writes visible to the caller (see util/thread_pool.h for the
/// happens-before contract). Do not call from inside a task running on the
/// same pool.
ValueTable solve_fast(int max_p, Ticks max_lifespan, const Params& params,
                      util::ThreadPool* pool = nullptr,
                      ParallelMode mode = ParallelMode::kAuto);

}  // namespace nowsched::solver
