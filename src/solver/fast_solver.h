// O(P·N·log N) crossover solver for W(p)[L].
//
// For t in [c, L] write
//   A(t) = (t − c) + V_p(L − t)   — non-decreasing in t (V_p is 1-Lipschitz),
//   B(t) = V_{p−1}(L − t)         — non-increasing in t.
// max_t min(A, B) is attained adjacent to the A/B crossover, found by binary
// search. Period lengths t < c contribute exactly V_p(L − t) <= V_p(L − 1)
// and t = 1 attains V_p(L − 1) (the adversary never spends an interrupt on
// an unproductive period), so
//   V_p(L) = max( V_p(L − 1),  max_{t in [c, L]} min(A, B) ).
//
// The V_p(L−1) carry serializes L, but the crossover searches within a block
// of c consecutive lifespans only read V_p values below the block, so blocks
// parallelize; a sequential prefix-max merges the carry.
#pragma once

#include "solver/value_table.h"
#include "util/thread_pool.h"

namespace nowsched::solver {

/// Fills W(p)[L] for all p in [0, max_p], L in [0, max_lifespan].
/// `pool` enables block-parallel level construction (worthwhile when
/// c >= ~256 ticks); pass nullptr for serial.
ValueTable solve_fast(int max_p, Ticks max_lifespan, const Params& params,
                      util::ThreadPool* pool = nullptr);

}  // namespace nowsched::solver
