// NEON (AArch64 AdvSIMD) instantiation of the two-phase level-fill kernel.
// AdvSIMD is baseline on AArch64, so unlike the AVX2 TU this needs no
// special flags — it simply compiles to nothing on other architectures.
#include "solver/fill_kernel.h"

#if defined(__aarch64__)

namespace nowsched::solver::detail {

void fill_range_neon(std::span<Ticks> cur, std::span<const Ticks> prev,
                     Ticks lo, Ticks hi, Ticks c, std::size_t* steps) {
  fill_range_two_phase<util::simd::I64x2Neon>(cur, prev, lo, hi, c, steps);
}

}  // namespace nowsched::solver::detail

#endif  // __aarch64__
