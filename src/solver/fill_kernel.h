// Internal: the blocked two-phase level-fill kernel, templated over a SIMD
// lane-traits struct from util/simd.h. Included only by the kernel
// translation units (fast_solver.cpp and the per-ISA TUs such as
// fast_solver_avx2.cpp) — nothing outside src/solver should include this.
//
// ## Derivation (why the scan vectorizes at all)
//
// The legacy kernel binary-searches, per lifespan l, the crossover of
//   A(t) = (t − c) + cur[l − t]   (non-decreasing in t)
//   B(t) = prev[l − t]            (non-increasing in t)
// over t ∈ [c, l]. Substitute j = l − t and m = l − c (so j ∈ [0, m]):
//
//   crossover_best(l) = max_{0<=j<=m} min( (m − j) + cur[j], prev[j] )
//
// Define w[j] = j + prev[j] − cur[j]. Under the table invariants (cur and
// prev non-decreasing and 1-Lipschitz, cur <= prev pointwise) w is
// non-decreasing, and "B(t) <= A(t)" at position j is exactly "w[j] <= m".
// So the crossover index
//
//   k(m) = max{ j ∈ [0, m] : w[j] <= m }      (or −1 when w[0] > m)
//
// is MONOTONE NON-DECREASING in m — and m increases by exactly 1 per
// lifespan. That turns the per-lifespan O(log) binary search into an
// amortized O(1) two-pointer advance, and
//
//   x(m) = max( k >= 0 ? prev[k] : −inf,  (m − (k+1)) + cur[k+1] )
//
// reproduces the legacy result bit-for-bit in every branch:
//   * k = −1  ("never crosses"):      x = m + cur[0]            = A(l)
//   * k = m   ("crossed at/before c"): w[m] <= m forces
//     prev[m] <= cur[m], which with the invariant cur <= prev means
//     prev[m] = cur[m] = min(A(c), B(c)); the a-term reads cur[m+1] — one
//     index past the scan range — but cur[m+1] − 1 <= cur[m] <= prev[m]
//     (1-Lipschitz), so that term NEVER wins. The read itself is benign
//     even mid-solve: m+1 <= hi − c <= lo stays inside this cell's own
//     rows, i.e. same-task memory (zero-init or an earlier tile's final
//     value), never another wavefront cell's — no data race, and either
//     value the read can observe is provably below prev[m].
//   * otherwise:                       x = max(B(l − k), A(l − k − 1)),
//     the legacy max(a(lo), b(hi)) pair around the crossover.
//
// ## Two-phase tile structure
//
// fill_range_two_phase processes [lo, hi) in tiles of min(256, c)
// lifespans — a tile's phase 1 runs wholly before its phase 2 writes, so
// the tile height must keep phase-1 reads below the tile start, which
// height <= c does (the wavefront's own block-locality argument, one level
// down):
//   phase 1  computes x(m) for the whole tile into a stack buffer, walking
//            k forward (never backward). Within a tile, whenever the gap
//            s[j] = prev[j] − cur[j] is locally constant — the dominant
//            regime in real tables, where the crossover advances exactly
//            one index per lifespan — a whole vector of lanes is emitted
//            from two contiguous loads (see the diagonal fast path below).
//   phase 2  merges the carry:  cur[l] = max(x(m), cur[l − 1])  is a
//            prefix-max over x seeded with cur[t0 − 1], vectorized as an
//            in-register prefix max plus a broadcast running carry. Integer
//            max is associative, so regrouping lanes is EXACT — phase 2 is
//            bit-identical to the sequential carry by algebra, not by luck.
//
// Every instantiation (scalar, AVX2, NEON) runs this same template, so the
// scalar kernel is not a separate implementation to diverge from — it is
// the V::kLanes == 1 instantiation with the vector paths compiled out.
//
// Read bounds (the wavefront contract): a tile starting at t0 >= lo probes
// prev/cur only at indices <= m <= t1 − 1 − c < t0 (and in particular
// < lo ... below the block start for the block's first tile), except the
// benign cur[m+1] read argued above, which reaches at most t1 − c <= t0 —
// same-cell memory either way; phase 2 writes [t0, t1) and reads
// cur[t0 − 1]. So a (p, b) cell still depends on exactly (p, b−1) and
// (p−1, b−1) — the task DAG of solve_fast is unchanged by the kernel swap.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>

#include "core/types.h"
#include "util/simd.h"

namespace nowsched::solver::detail {

template <class V>
void fill_range_two_phase(std::span<Ticks> cur, std::span<const Ticks> prev,
                          Ticks lo, Ticks hi, Ticks c, std::size_t* steps) {
  constexpr Ticks kTileCap = 256;
  // A tile's phase 1 runs entirely before its phase 2 writes, so every real
  // phase-1 read (index <= tile_last − c) must land below the tile start —
  // exactly the block-locality argument of the wavefront, applied at tile
  // granularity. Tile height <= c guarantees it for any [lo, hi).
  const Ticks tile = std::min(kTileCap, c);
  constexpr int kLanes = V::kLanes;
  constexpr Ticks kLow = std::numeric_limits<Ticks>::min();
  Ticks x[static_cast<std::size_t>(kTileCap)];
  std::size_t probes = 0;

  auto w = [&](Ticks j) {
    return j + prev[static_cast<std::size_t>(j)] -
           cur[static_cast<std::size_t>(j)];
  };

  // Seed k = k(m0) for the block's first lifespan with one binary search
  // (every probe index <= m0 = lo − c < lo, i.e. final memory); afterwards
  // k only advances.
  Ticks k = -1;
  {
    const Ticks m0 = lo - c;
    if (m0 >= 0) {
      ++probes;
      if (w(0) <= m0) {
        ++probes;
        if (w(m0) <= m0) {
          k = m0;
        } else {
          Ticks a = 0, b = m0;  // w(a) <= m0 < w(b)
          while (a + 1 < b) {
            const Ticks mid = a + (b - a) / 2;
            ++probes;
            (w(mid) <= m0 ? a : b) = mid;
          }
          k = a;
        }
      }
    }
  }

  for (Ticks t0 = lo; t0 < hi; t0 += tile) {
    const Ticks t1 = std::min(hi, t0 + tile);
    const int len = static_cast<int>(t1 - t0);

    // Phase 1: crossover pass into x[0..len).
    int i = 0;
    while (i < len) {
      const Ticks m = (t0 + i) - c;
      if (m < 0) {  // l < c: no completable period, the carry alone decides.
        x[i] = 0;
        ++i;
        continue;
      }
      while (k < m && (++probes, w(k + 1) <= m)) ++k;
      if constexpr (kLanes > 1) {
        // Diagonal fast path: with d = m − k, if s[j] = prev[j] − cur[j]
        // satisfies s[k+1 .. k+kLanes−1] == d and s[k+kLanes] >= d, then
        // k(m + i) = k + i for every lane (w(k+i) = m+i reaches, w(k+i+1)
        // stops), and both terms of x become contiguous vector loads:
        //   x_i = max( prev[k+i],  (m − k − 1) + cur[k+i+1] ).
        // Requires k ∈ [0, m): all loads land in [k, k + kLanes] ⊆
        // [0, m + kLanes − 1] = [0, m_last] — final memory, in-span.
        if (i + kLanes <= len && k >= 0 && k < m) {
          const Ticks d = m - k;
          const typename V::Reg pv = V::load(prev.data() + (k + 1));
          const typename V::Reg cv = V::load(cur.data() + (k + 1));
          const typename V::Reg sv = V::sub(pv, cv);
          probes += static_cast<std::size_t>(kLanes);
          if (V::count_lt(sv, d) == 0 && V::leading_le(sv, d) >= kLanes - 1) {
            const typename V::Reg a = V::add(V::set1(m - k - 1), cv);
            V::store(x + i, V::max(V::load(prev.data() + k), a));
            k += kLanes - 1;
            i += kLanes;
            continue;
          }
        }
      }
      ++probes;
      const Ticks a = (m - (k + 1)) + cur[static_cast<std::size_t>(k + 1)];
      x[i] = std::max(k >= 0 ? prev[static_cast<std::size_t>(k)] : kLow, a);
      ++i;
    }

    // Phase 2: prefix-max carry merge x → cur[t0, t1).
    Ticks carry = cur[static_cast<std::size_t>(t0 - 1)];
    int j = 0;
    if constexpr (kLanes > 1) {
      for (; j + kLanes <= len; j += kLanes) {
        typename V::Reg v = V::prefix_max(V::load(x + j));
        v = V::max(v, V::set1(carry));
        V::store(cur.data() + (t0 + j), v);
        carry = V::last_lane(v);
      }
    }
    for (; j < len; ++j) {
      carry = std::max(carry, x[j]);
      cur[static_cast<std::size_t>(t0 + j)] = carry;
    }
  }

  if (steps != nullptr) *steps += probes + static_cast<std::size_t>(hi - lo);
}

// Per-ISA entry points; each is defined in a TU compiled with that ISA
// enabled (see CMakeLists: fast_solver_avx2.cpp gets -mavx2). Declared
// unconditionally so the dispatcher can reference them behind the
// NOWSCHED_HAVE_* macros without including intrinsics headers.
void fill_range_avx2(std::span<Ticks> cur, std::span<const Ticks> prev,
                     Ticks lo, Ticks hi, Ticks c, std::size_t* steps);
void fill_range_neon(std::span<Ticks> cur, std::span<const Ticks> prev,
                     Ticks lo, Ticks hi, Ticks c, std::size_t* steps);

}  // namespace nowsched::solver::detail
