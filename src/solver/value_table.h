// W(p)[L] value tables — the paper's optimal guaranteed work, computed
// exactly on the integer tick grid.
//
// Game semantics (§2.2, sequentialized): with residual lifespan L and p
// potential interrupts, A picks the next period length t; the adversary
// either lets it complete (A banks t ⊖ c, continues with (p, L−t)) or kills
// it at its last instant (A banks nothing, continues with (p−1, L−t)).
// Committing a whole episode-schedule is equivalent: the tail of an episode
// is exactly A's continuation in the no-interrupt branch, and no other
// information arrives at period boundaries.
//
//   V_0(L) = L ⊖ c                                   (Prop 4.1(d))
//   V_p(L) = max_{1<=t<=L} min( (t ⊖ c) + V_p(L−t),  V_{p−1}(L−t) )
//
// Values are exact integers; `solve_reference` is the O(P·N²) oracle and
// `solve_fast` the O(P·N·log N) production solver (they agree bit-for-bit;
// see tests/solver_cross_check_test.cpp).
//
// Storage is one contiguous slab of (max_p+1) × (max_lifespan+1) Ticks in
// level-major order, so level(p) / mutable_level(p) are zero-copy spans into
// adjacent memory — the wavefront solver walks level p and level p−1
// together and wants both streams prefetch-friendly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.h"

namespace nowsched::solver {

class ValueTable {
 public:
  /// A zero-initialized table; filled by the solvers.
  ValueTable(int max_p, Ticks max_lifespan, const Params& params);

  /// W(p)[L]; requires 0 <= p <= max_p and 0 <= L <= max_lifespan.
  Ticks value(int p, Ticks lifespan) const;

  /// The whole level p as a span over L = 0..max_lifespan.
  std::span<const Ticks> level(int p) const;

  int max_interrupts() const noexcept { return max_p_; }
  Ticks max_lifespan() const noexcept { return max_l_; }
  const Params& params() const noexcept { return params_; }

  /// Slab size in bytes — what a resident table costs a cache (the
  /// (max_p+1) × (max_lifespan+1) value storage; the struct header is
  /// negligible against any real table).
  std::size_t bytes() const noexcept { return slab_.size() * sizeof(Ticks); }

  /// Mutable level access for the solvers.
  ///
  /// Concurrency contract (what the wavefront solver relies on): distinct
  /// levels are disjoint element ranges of one slab, so two threads may
  /// write different levels — or write level p while a third reads level
  /// p−1 at indices already final — without a data race, provided the
  /// writer/reader ordering is established externally (the thread pool's
  /// run_dag dependency edges do this; see util/thread_pool.h). The spans
  /// themselves are stable: no member function invalidates them after
  /// construction.
  std::span<Ticks> mutable_level(int p);

 private:
  std::size_t stride() const noexcept { return static_cast<std::size_t>(max_l_) + 1; }

  int max_p_;
  Ticks max_l_;
  Params params_;
  std::vector<Ticks> slab_;  // level-major: slab_[p * stride() + L]
};

}  // namespace nowsched::solver
