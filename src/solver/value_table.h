// W(p)[L] value tables — the paper's optimal guaranteed work, computed
// exactly on the integer tick grid.
//
// Game semantics (§2.2, sequentialized): with residual lifespan L and p
// potential interrupts, A picks the next period length t; the adversary
// either lets it complete (A banks t ⊖ c, continues with (p, L−t)) or kills
// it at its last instant (A banks nothing, continues with (p−1, L−t)).
// Committing a whole episode-schedule is equivalent: the tail of an episode
// is exactly A's continuation in the no-interrupt branch, and no other
// information arrives at period boundaries.
//
//   V_0(L) = L ⊖ c                                   (Prop 4.1(d))
//   V_p(L) = max_{1<=t<=L} min( (t ⊖ c) + V_p(L−t),  V_{p−1}(L−t) )
//
// Values are exact integers; `solve_reference` is the O(P·N²) oracle and
// `solve_fast` the O(P·N·log N) production solver (they agree bit-for-bit;
// see tests/solver_cross_check_test.cpp).
//
// Storage is one contiguous slab of (max_p+1) × (max_lifespan+1) Ticks in
// level-major order, so level(p) / mutable_level(p) are zero-copy spans into
// adjacent memory — the wavefront solver walks level p and level p−1
// together and wants both streams prefetch-friendly.
//
// Two storage modes share one read interface:
//   * OWNING  — the constructor allocates the slab; the solvers fill it via
//     mutable_level. This is every freshly solved table.
//   * VIEW    — ValueTable::view wraps an externally owned, already-final
//     slab (in practice: the payload of a memory-mapped store file, see
//     solver/table_store.h) without copying a byte. The view holds a
//     type-erased keepalive so the backing storage outlives every reader;
//     mutable_level on a view throws std::logic_error — a mapped table is
//     immutable BY CONSTRUCTION, which is what makes "mapped and solved
//     tables are bit-identical" a provable property rather than a
//     convention.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "core/types.h"

namespace nowsched::solver {

/// Alignment of every owning slab. 64 bytes = one cache line = two full
/// AVX2 vectors of Ticks, so the SIMD kernels' full-width level accesses
/// never straddle a line and the level stride keeps whatever alignment the
/// base has. (Mapped-store views are page-aligned by mmap, which is
/// stricter.)
inline constexpr std::size_t kSlabAlignment = 64;

/// Minimal aligned allocator for the slab vector. Stateless: all instances
/// are interchangeable, so vector moves/swaps behave exactly as with
/// std::allocator.
template <class T>
struct SlabAllocator {
  using value_type = T;
  SlabAllocator() = default;
  template <class U>
  SlabAllocator(const SlabAllocator<U>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kSlabAlignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kSlabAlignment});
  }
  template <class U>
  friend bool operator==(const SlabAllocator&, const SlabAllocator<U>&) noexcept {
    return true;
  }
};

/// The owning storage type for a level-major table slab.
using TableSlab = std::vector<Ticks, SlabAllocator<Ticks>>;

class ValueTable {
 public:
  /// A zero-initialized owning table; filled by the solvers.
  ValueTable(int max_p, Ticks max_lifespan, const Params& params);

  /// A non-owning, read-only table over an externally owned slab. `slab`
  /// must hold exactly (max_p+1) × (max_lifespan+1) entries in level-major
  /// order and must stay valid for as long as `keepalive` is held (the view
  /// and every copy of it hold `keepalive` for their whole lifetime).
  /// Throws std::invalid_argument on a dimension/size mismatch.
  static ValueTable view(int max_p, Ticks max_lifespan, const Params& params,
                         std::span<const Ticks> slab,
                         std::shared_ptr<const void> keepalive);

  /// W(p)[L]; requires 0 <= p <= max_p and 0 <= L <= max_lifespan.
  Ticks value(int p, Ticks lifespan) const;

  /// The whole level p as a span over L = 0..max_lifespan.
  std::span<const Ticks> level(int p) const;

  int max_interrupts() const noexcept { return max_p_; }
  Ticks max_lifespan() const noexcept { return max_l_; }
  const Params& params() const noexcept { return params_; }

  /// True when this table owns its slab (and mutable_level is usable);
  /// false for views over external storage.
  bool owns_storage() const noexcept { return view_data_ == nullptr; }

  /// The full level-major slab — what the table store serializes and what
  /// the bit-identity tests compare. Valid for owning tables and views.
  std::span<const Ticks> slab() const noexcept { return {data(), entries()}; }

  /// Slab size in bytes — what a resident table costs a cache (the
  /// (max_p+1) × (max_lifespan+1) value storage; the struct header is
  /// negligible against any real table). Identical for an owning table and
  /// a view of it: byte budgets meter logical table size, not which tier's
  /// memory currently backs it.
  std::size_t bytes() const noexcept { return entries() * sizeof(Ticks); }

  /// Mutable level access for the solvers. Owning tables only: a view is
  /// immutable by construction and throws std::logic_error.
  ///
  /// Concurrency contract (what the wavefront solver relies on): distinct
  /// levels are disjoint element ranges of one slab, so two threads may
  /// write different levels — or write level p while a third reads level
  /// p−1 at indices already final — without a data race, provided the
  /// writer/reader ordering is established externally (the thread pool's
  /// run_dag dependency edges do this; see util/thread_pool.h). The spans
  /// themselves are stable: no member function invalidates them after
  /// construction.
  std::span<Ticks> mutable_level(int p);

 private:
  std::size_t stride() const noexcept { return static_cast<std::size_t>(max_l_) + 1; }
  std::size_t entries() const noexcept {
    return (static_cast<std::size_t>(max_p_) + 1) * stride();
  }
  /// The slab base, whichever storage mode backs it. Owning tables resolve
  /// through owned_ on every call (not a cached pointer), so copies and
  /// moves need no special member functions to stay correct.
  const Ticks* data() const noexcept {
    return view_data_ != nullptr ? view_data_ : owned_.data();
  }

  int max_p_;
  Ticks max_l_;
  Params params_;
  TableSlab owned_;                  // level-major: data()[p * stride() + L],
                                     // kSlabAlignment-aligned base
  const Ticks* view_data_ = nullptr; // non-null IFF this is a view
  std::shared_ptr<const void> keepalive_;  // pins a view's backing storage
};

}  // namespace nowsched::solver
