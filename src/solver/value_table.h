// W(p)[L] value tables — the paper's optimal guaranteed work, computed
// exactly on the integer tick grid.
//
// Game semantics (§2.2, sequentialized): with residual lifespan L and p
// potential interrupts, A picks the next period length t; the adversary
// either lets it complete (A banks t ⊖ c, continues with (p, L−t)) or kills
// it at its last instant (A banks nothing, continues with (p−1, L−t)).
// Committing a whole episode-schedule is equivalent: the tail of an episode
// is exactly A's continuation in the no-interrupt branch, and no other
// information arrives at period boundaries.
//
//   V_0(L) = L ⊖ c                                   (Prop 4.1(d))
//   V_p(L) = max_{1<=t<=L} min( (t ⊖ c) + V_p(L−t),  V_{p−1}(L−t) )
//
// Values are exact integers; `solve_reference` is the O(P·N²) oracle and
// `solve_fast` the O(P·N·log N) production solver (they agree bit-for-bit;
// see tests/solver_cross_check_test.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.h"

namespace nowsched::solver {

class ValueTable {
 public:
  /// An uninitialized table; filled by the solvers.
  ValueTable(int max_p, Ticks max_lifespan, const Params& params);

  /// W(p)[L]; requires 0 <= p <= max_p and 0 <= L <= max_lifespan.
  Ticks value(int p, Ticks lifespan) const;

  /// The whole level p as a span over L = 0..max_lifespan.
  std::span<const Ticks> level(int p) const;

  int max_interrupts() const noexcept { return max_p_; }
  Ticks max_lifespan() const noexcept { return max_l_; }
  const Params& params() const noexcept { return params_; }

  /// Mutable level access for the solvers.
  std::span<Ticks> mutable_level(int p);

 private:
  int max_p_;
  Ticks max_l_;
  Params params_;
  std::vector<std::vector<Ticks>> levels_;  // levels_[p][L]
};

}  // namespace nowsched::solver
