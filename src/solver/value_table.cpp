#include "solver/value_table.h"

#include <stdexcept>
#include <utility>

namespace nowsched::solver {

ValueTable::ValueTable(int max_p, Ticks max_lifespan, const Params& params)
    : max_p_(max_p), max_l_(max_lifespan), params_(params) {
  require_valid(params);
  if (max_p < 0) throw std::invalid_argument("ValueTable: max_p must be >= 0");
  if (max_lifespan < 0) throw std::invalid_argument("ValueTable: max_lifespan >= 0");
  owned_.assign(entries(), 0);
}

ValueTable ValueTable::view(int max_p, Ticks max_lifespan, const Params& params,
                            std::span<const Ticks> slab,
                            std::shared_ptr<const void> keepalive) {
  // Delegate dimension validation (and zero-fill of a throwaway 1-element
  // minimum slab for degenerate dims) to the owning constructor, then swap
  // the storage out for the external span.
  ValueTable table(max_p, max_lifespan, params);
  if (slab.size() != table.entries()) {
    throw std::invalid_argument(
        "ValueTable::view: slab has " + std::to_string(slab.size()) +
        " entries, dims require " + std::to_string(table.entries()));
  }
  table.owned_.clear();
  table.owned_.shrink_to_fit();
  table.view_data_ = slab.data();
  table.keepalive_ = std::move(keepalive);
  return table;
}

Ticks ValueTable::value(int p, Ticks lifespan) const {
  if (p < 0 || p > max_p_ || lifespan < 0 || lifespan > max_l_) {
    throw std::out_of_range("ValueTable::value: (p, L) outside the table");
  }
  return data()[static_cast<std::size_t>(p) * stride() +
                static_cast<std::size_t>(lifespan)];
}

std::span<const Ticks> ValueTable::level(int p) const {
  if (p < 0 || p > max_p_) throw std::out_of_range("ValueTable::level: bad p");
  return {data() + static_cast<std::size_t>(p) * stride(), stride()};
}

std::span<Ticks> ValueTable::mutable_level(int p) {
  if (!owns_storage()) {
    throw std::logic_error(
        "ValueTable::mutable_level: table is a read-only view over external "
        "storage (a mapped store table is immutable by construction)");
  }
  if (p < 0 || p > max_p_) throw std::out_of_range("ValueTable::mutable_level: bad p");
  return {owned_.data() + static_cast<std::size_t>(p) * stride(), stride()};
}

}  // namespace nowsched::solver
