#include "solver/value_table.h"

#include <stdexcept>

namespace nowsched::solver {

ValueTable::ValueTable(int max_p, Ticks max_lifespan, const Params& params)
    : max_p_(max_p), max_l_(max_lifespan), params_(params) {
  require_valid(params);
  if (max_p < 0) throw std::invalid_argument("ValueTable: max_p must be >= 0");
  if (max_lifespan < 0) throw std::invalid_argument("ValueTable: max_lifespan >= 0");
  slab_.assign((static_cast<std::size_t>(max_p) + 1) * stride(), 0);
}

Ticks ValueTable::value(int p, Ticks lifespan) const {
  if (p < 0 || p > max_p_ || lifespan < 0 || lifespan > max_l_) {
    throw std::out_of_range("ValueTable::value: (p, L) outside the table");
  }
  return slab_[static_cast<std::size_t>(p) * stride() +
               static_cast<std::size_t>(lifespan)];
}

std::span<const Ticks> ValueTable::level(int p) const {
  if (p < 0 || p > max_p_) throw std::out_of_range("ValueTable::level: bad p");
  return {slab_.data() + static_cast<std::size_t>(p) * stride(), stride()};
}

std::span<Ticks> ValueTable::mutable_level(int p) {
  if (p < 0 || p > max_p_) throw std::out_of_range("ValueTable::mutable_level: bad p");
  return {slab_.data() + static_cast<std::size_t>(p) * stride(), stride()};
}

}  // namespace nowsched::solver
