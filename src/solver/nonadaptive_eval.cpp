#include "solver/nonadaptive_eval.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nowsched::solver {

namespace {

constexpr Ticks kInf = std::numeric_limits<Ticks>::max() / 4;

}  // namespace

NonAdaptiveBestResponse nonadaptive_best_response(const EpisodeSchedule& sched,
                                                  Ticks lifespan, int p,
                                                  const Params& params) {
  require_valid(params);
  if (sched.total() != lifespan) {
    throw std::invalid_argument(
        "nonadaptive_best_response: schedule must span the lifespan");
  }
  if (p < 0) throw std::invalid_argument("nonadaptive_best_response: p >= 0");

  const std::size_t m = sched.size();
  // f[k][q] = min work over periods k..m-1 with q interrupts left.
  // Options at period k (0-based):
  //   complete:            (t_k ⊖ c) + f[k+1][q]
  //   interrupt (q >= 2):  f[k+1][q-1]
  //   interrupt (q == 1):  (U − T_{k+1}) ⊖ c      (long-period rule fires)
  std::vector<std::vector<Ticks>> f(m + 1,
                                    std::vector<Ticks>(static_cast<std::size_t>(p) + 1));
  for (int q = 0; q <= p; ++q) f[m][static_cast<std::size_t>(q)] = 0;
  for (std::size_t k = m; k-- > 0;) {
    for (int q = 0; q <= p; ++q) {
      Ticks best = positive_sub(sched.period(k), params.c) +
                   f[k + 1][static_cast<std::size_t>(q)];
      if (q >= 2) {
        best = std::min(best, f[k + 1][static_cast<std::size_t>(q - 1)]);
      } else if (q == 1) {
        best = std::min(best,
                        positive_sub(positive_sub(lifespan, sched.end(k)), params.c));
      }
      f[k][static_cast<std::size_t>(q)] = best;
    }
  }

  NonAdaptiveBestResponse out;
  out.value = m == 0 ? 0 : f[0][static_cast<std::size_t>(p)];

  // Walk the argmin to recover the interrupt set.
  std::size_t k = 0;
  int q = p;
  while (k < m) {
    const Ticks target = f[k][static_cast<std::size_t>(q)];
    if (q >= 2 && f[k + 1][static_cast<std::size_t>(q - 1)] == target) {
      out.killed_periods.push_back(k);
      --q;
      ++k;
      continue;
    }
    if (q == 1 &&
        positive_sub(positive_sub(lifespan, sched.end(k)), params.c) == target) {
      out.killed_periods.push_back(k);
      // Long-period remainder; nothing further to decide.
      break;
    }
    ++k;  // period completes
  }
  return out;
}

Ticks nonadaptive_guaranteed_work(const EpisodeSchedule& sched, Ticks lifespan, int p,
                                  const Params& params) {
  return nonadaptive_best_response(sched, lifespan, p, params).value;
}

EqualPeriodSearch best_equal_period_count(Ticks lifespan, int p, const Params& params,
                                          std::size_t max_m) {
  require_valid(params);
  if (lifespan < 1) throw std::invalid_argument("best_equal_period_count: lifespan >= 1");
  if (max_m == 0) {
    const double guess = std::sqrt(static_cast<double>(p) *
                                   static_cast<double>(lifespan) /
                                   static_cast<double>(params.c));
    max_m = static_cast<std::size_t>(4.0 * std::ceil(guess)) + 8;
  }
  max_m = std::min<std::size_t>(max_m, static_cast<std::size_t>(lifespan));

  EqualPeriodSearch out;
  out.best_value = -kInf;
  out.value_by_m.reserve(max_m);
  for (std::size_t m = 1; m <= max_m; ++m) {
    const auto sched = EpisodeSchedule::equal_split(lifespan, m);
    const Ticks v = nonadaptive_guaranteed_work(sched, lifespan, p, params);
    out.value_by_m.push_back(v);
    if (v > out.best_value) {
      out.best_value = v;
      out.best_m = m;
    }
  }
  return out;
}

}  // namespace nowsched::solver
