// Exact guaranteed work of an arbitrary *fixed* adaptive policy.
//
// Unlike the W(p)[L] solver (which optimizes over all policies), this
// evaluator fixes the scheduler and lets only the adversary optimize:
//   R_0(L) = uninterrupted work of π(L, 0)
//   R_q(L) = min( uninterrupted work of π(L, q),
//                 min_k  banked_k + R_{q−1}(L − T_{k+1}) )
// where banked_k is the work of the first k periods of π(L, q) and T_{k+1}
// the end of the killed period (last-instant interrupts; Obs (a)).
//
// Levels are computed bottom-up over q; within a level all lifespans are
// independent and evaluated in parallel.
#pragma once

#include <optional>
#include <vector>

#include "core/policy.h"
#include "util/thread_pool.h"

namespace nowsched::solver {

/// R_p(L) for every L in [0, max_lifespan]. `pool` parallelizes each level.
std::vector<Ticks> evaluate_policy_grid(const SchedulingPolicy& policy,
                                        Ticks max_lifespan, int p, const Params& params,
                                        util::ThreadPool* pool = nullptr);

/// Guaranteed work of `policy` for one opportunity (U, p).
Ticks evaluate_policy(const SchedulingPolicy& policy, Ticks lifespan, int p,
                      const Params& params, util::ThreadPool* pool = nullptr);

/// One episode of the adversary's optimal play against a fixed policy.
struct AdversaryMove {
  Ticks episode_lifespan = 0;              ///< residual when the episode began
  int interrupts_left = 0;                 ///< q at episode start
  std::optional<std::size_t> killed;       ///< 0-based killed period; nullopt = ran out
  Ticks banked = 0;                        ///< work banked by this episode
};

/// Full best-response trace against a fixed policy: the episode-by-episode
/// interrupt placements achieving the guaranteed-work minimum. `value` equals
/// evaluate_policy(policy, U, p). Used by bench_table1 and to drive the
/// simulator in integration tests.
struct BestResponse {
  Ticks value = 0;
  std::vector<AdversaryMove> moves;
};
BestResponse best_response(const SchedulingPolicy& policy, Ticks lifespan, int p,
                           const Params& params, util::ThreadPool* pool = nullptr);

}  // namespace nowsched::solver
