#include "solver/extract.h"

#include <algorithm>
#include <span>
#include <stdexcept>

namespace nowsched::solver {

namespace {

/// Shared by both period finders: the two branches of the DP minimum at
/// period length t from state (p, l). `cur`/`prev` are levels p and p−1.
struct Branches {
  std::span<const Ticks> cur, prev;
  Ticks l, c;

  /// A(t) = (t ⊖ c) + V_p(l−t): non-increasing on [1, c] (pure table read),
  /// non-decreasing on [c, l] (V_p is 1-Lipschitz).
  Ticks a(Ticks t) const {
    return positive_sub(t, c) + cur[static_cast<std::size_t>(l - t)];
  }
  /// B(t) = V_{p−1}(l−t): non-increasing on all of [1, l].
  Ticks b(Ticks t) const { return prev[static_cast<std::size_t>(l - t)]; }
  Ticks min_ab(Ticks t) const { return std::min(a(t), b(t)); }
};

/// Largest t in [lo, hi] with f.b(t) >= target (f.b is non-increasing), or
/// 0 when even f.b(lo) < target.
Ticks last_b_at_least(const Branches& f, Ticks lo, Ticks hi, Ticks target) {
  if (f.b(lo) < target) return 0;
  while (lo < hi) {
    const Ticks mid = lo + (hi - lo + 1) / 2;
    if (f.b(mid) >= target) lo = mid;
    else hi = mid - 1;
  }
  return lo;
}

/// Largest t in [1, hi] with min(A, B) >= target on the prefix region
/// t <= c, where BOTH branches are non-increasing in t, or 0 when none.
Ticks last_prefix_attaining(const Branches& f, Ticks hi, Ticks target) {
  if (f.min_ab(1) < target) return 0;
  Ticks lo = 1;
  while (lo < hi) {
    const Ticks mid = lo + (hi - lo + 1) / 2;
    if (f.min_ab(mid) >= target) lo = mid;
    else hi = mid - 1;
  }
  return lo;
}

}  // namespace

Ticks best_period_length_linear(const ValueTable& table, int p, Ticks l) {
  const Branches f{table.level(p), table.level(p - 1), l, table.params().c};
  const Ticks target = table.value(p, l);
  Ticks best_t = 1;
  for (Ticks t = 1; t <= l; ++t) {
    if (f.min_ab(t) >= target) best_t = t;  // never exceeds target; >= is a tie
  }
  return best_t;
}

Ticks best_period_length(const ValueTable& table, int p, Ticks l) {
  const Branches f{table.level(p), table.level(p - 1), l, table.params().c};
  const Ticks c = f.c;
  // V is attained by some t in [1, l]: the recurrence IS max over that range.
  const Ticks target = table.value(p, l);

  // Suffix region t in [c, l]: A non-decreasing, B non-increasing — the
  // crossover structure. Any attaining t here is >= c, hence longer than
  // every prefix (t < c) candidate, so search it first.
  if (l > c) {
    Ticks lo = c, hi = l;
    if (f.a(lo) >= f.b(lo)) {
      // min == B on the whole suffix; B is non-increasing, so the longest
      // attaining t is the last one with B == target (if B starts there).
      const Ticks t = last_b_at_least(f, lo, hi, target);
      if (t != 0 && f.b(t) == target) return t;
    } else if (f.a(hi) < f.b(hi)) {
      // min == A on the whole suffix, maximized (non-decreasing) at t = l.
      if (f.a(hi) == target) return hi;
    } else {
      // Proper crossover: lo becomes the last t with A < B, hi = lo + 1.
      while (lo + 1 < hi) {
        const Ticks mid = lo + (hi - lo) / 2;
        if (f.a(mid) < f.b(mid)) lo = mid;
        else hi = mid;
      }
      // Past the crossover min == B: the longest attaining t overall.
      const Ticks t = last_b_at_least(f, hi, l, target);
      if (t != 0 && f.b(t) == target) return t;
      // Before it min == A, non-decreasing: its plateau of maxima ends at lo.
      if (f.a(lo) == target) return lo;
    }
  }

  // Prefix region t in [1, min(c, l)]: t ⊖ c == 0, so A == V_p(l−t) and both
  // branches are non-increasing — one monotone search finds the longest
  // attaining t. Reached only when no suffix t attains (e.g. the carry case
  // V_p(l) == V_p(l−1), attained at t = 1 because V_{p−1} >= V_p pointwise).
  const Ticks t = last_prefix_attaining(f, std::min(c, l), target);
  if (t == 0) {
    throw std::logic_error(
        "best_period_length: no attaining period — value table is inconsistent");
  }
  return t;
}

EpisodeSchedule extract_episode(const ValueTable& table, int p, Ticks lifespan) {
  if (lifespan < 0 || lifespan > table.max_lifespan()) {
    throw std::out_of_range("extract_episode: lifespan outside the table");
  }
  if (p < 0 || p > table.max_interrupts()) {
    throw std::out_of_range("extract_episode: p outside the table");
  }
  if (lifespan == 0) return EpisodeSchedule{};
  if (p == 0) return EpisodeSchedule({lifespan});  // Prop 4.1(d)

  std::vector<Ticks> periods;
  Ticks l = lifespan;
  while (l > 0) {
    const Ticks t = best_period_length(table, p, l);
    periods.push_back(t);
    l -= t;
  }
  return EpisodeSchedule(std::move(periods));
}

std::vector<Ticks> equalization_residuals(const ValueTable& table,
                                          const EpisodeSchedule& episode, int p,
                                          Ticks lifespan) {
  if (p < 1) throw std::invalid_argument("equalization_residuals: need p >= 1");
  const Ticks c = table.params().c;
  const auto prev = table.level(p - 1);
  std::vector<Ticks> residuals;
  residuals.reserve(episode.size());
  // Thm 4.3 writes t_k = c + W(p−1)[U − T_k] − W(p−1)[U − T_{k+1}] where T_k
  // is the END of (1-based) period k — equivalently, killing period k versus
  // killing period k+1 must cost the adversary the same. The final period
  // has no successor; its residual is reported as 0.
  for (std::size_t k = 0; k + 1 < episode.size(); ++k) {
    const Ticks w_k =
        prev[static_cast<std::size_t>(positive_sub(lifespan, episode.end(k)))];
    const Ticks w_next =
        prev[static_cast<std::size_t>(positive_sub(lifespan, episode.end(k + 1)))];
    residuals.push_back(episode.period(k) - (c + w_k - w_next));
  }
  if (!episode.empty()) residuals.push_back(0);
  return residuals;
}

OptimalPolicy::OptimalPolicy(std::shared_ptr<const ValueTable> table)
    : table_(std::move(table)) {
  if (!table_) throw std::invalid_argument("OptimalPolicy: null table");
}

EpisodeSchedule OptimalPolicy::episode(Ticks residual, int interrupts_left,
                                       const Params& params) const {
  if (params.c != table_->params().c) {
    throw std::invalid_argument("OptimalPolicy: params mismatch with table");
  }
  const int p = std::min(interrupts_left, table_->max_interrupts());
  return extract_episode(*table_, p, residual);
}

}  // namespace nowsched::solver
