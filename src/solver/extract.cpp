#include "solver/extract.h"

#include <algorithm>
#include <stdexcept>

namespace nowsched::solver {

namespace {

/// Longest t in [1, l] attaining V_p(l) = min((t ⊖ c) + V_p(l−t), V_{p−1}(l−t)).
Ticks best_period_length(const ValueTable& table, int p, Ticks l) {
  const Ticks c = table.params().c;
  const auto cur = table.level(p);
  const auto prev = table.level(p - 1);
  const Ticks target = cur[static_cast<std::size_t>(l)];
  Ticks best_t = 1;
  for (Ticks t = 1; t <= l; ++t) {
    const auto rest = static_cast<std::size_t>(l - t);
    const Ticks v = std::min(positive_sub(t, c) + cur[rest], prev[rest]);
    if (v >= target) best_t = t;  // v never exceeds target; >= catches ties
  }
  return best_t;
}

}  // namespace

EpisodeSchedule extract_episode(const ValueTable& table, int p, Ticks lifespan) {
  if (lifespan < 0 || lifespan > table.max_lifespan()) {
    throw std::out_of_range("extract_episode: lifespan outside the table");
  }
  if (p < 0 || p > table.max_interrupts()) {
    throw std::out_of_range("extract_episode: p outside the table");
  }
  if (lifespan == 0) return EpisodeSchedule{};
  if (p == 0) return EpisodeSchedule({lifespan});  // Prop 4.1(d)

  std::vector<Ticks> periods;
  Ticks l = lifespan;
  while (l > 0) {
    const Ticks t = best_period_length(table, p, l);
    periods.push_back(t);
    l -= t;
  }
  return EpisodeSchedule(std::move(periods));
}

std::vector<Ticks> equalization_residuals(const ValueTable& table,
                                          const EpisodeSchedule& episode, int p,
                                          Ticks lifespan) {
  if (p < 1) throw std::invalid_argument("equalization_residuals: need p >= 1");
  const Ticks c = table.params().c;
  const auto prev = table.level(p - 1);
  std::vector<Ticks> residuals;
  residuals.reserve(episode.size());
  // Thm 4.3 writes t_k = c + W(p−1)[U − T_k] − W(p−1)[U − T_{k+1}] where T_k
  // is the END of (1-based) period k — equivalently, killing period k versus
  // killing period k+1 must cost the adversary the same. The final period
  // has no successor; its residual is reported as 0.
  for (std::size_t k = 0; k + 1 < episode.size(); ++k) {
    const Ticks w_k =
        prev[static_cast<std::size_t>(positive_sub(lifespan, episode.end(k)))];
    const Ticks w_next =
        prev[static_cast<std::size_t>(positive_sub(lifespan, episode.end(k + 1)))];
    residuals.push_back(episode.period(k) - (c + w_k - w_next));
  }
  if (!episode.empty()) residuals.push_back(0);
  return residuals;
}

OptimalPolicy::OptimalPolicy(std::shared_ptr<const ValueTable> table)
    : table_(std::move(table)) {
  if (!table_) throw std::invalid_argument("OptimalPolicy: null table");
}

EpisodeSchedule OptimalPolicy::episode(Ticks residual, int interrupts_left,
                                       const Params& params) const {
  if (params.c != table_->params().c) {
    throw std::invalid_argument("OptimalPolicy: params mismatch with table");
  }
  const int p = std::min(interrupts_left, table_->max_interrupts());
  return extract_episode(*table_, p, residual);
}

}  // namespace nowsched::solver
