#include "solver/policy_eval.h"

#include <algorithm>
#include <stdexcept>

namespace nowsched::solver {

namespace {

/// Adversary value of one committed episode given the next level's values.
Ticks episode_value(const EpisodeSchedule& sched, Ticks lifespan, const Params& params,
                    const std::vector<Ticks>* next_level) {
  Ticks best = sched.work_if_uninterrupted(params);
  if (next_level != nullptr) {
    Ticks banked = 0;
    for (std::size_t k = 0; k < sched.size(); ++k) {
      const Ticks rest = positive_sub(lifespan, sched.end(k));
      best = std::min(best, banked + (*next_level)[static_cast<std::size_t>(rest)]);
      banked += positive_sub(sched.period(k), params.c);
    }
  }
  return best;
}

std::vector<Ticks> compute_level(const SchedulingPolicy& policy, Ticks max_lifespan,
                                 int q, const Params& params,
                                 const std::vector<Ticks>* next_level,
                                 util::ThreadPool* pool) {
  std::vector<Ticks> level(static_cast<std::size_t>(max_lifespan) + 1, 0);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t l = lo; l < hi; ++l) {
      const auto lifespan = static_cast<Ticks>(l);
      const EpisodeSchedule sched = policy.episode(lifespan, q, params);
      if (sched.total() != lifespan) {
        throw std::logic_error("policy '" + policy.name() +
                               "' produced an episode not spanning the lifespan");
      }
      level[l] = episode_value(sched, lifespan, params, next_level);
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(1, static_cast<std::size_t>(max_lifespan) + 1, body);
  } else {
    body(1, static_cast<std::size_t>(max_lifespan) + 1);
  }
  return level;
}

}  // namespace

std::vector<Ticks> evaluate_policy_grid(const SchedulingPolicy& policy,
                                        Ticks max_lifespan, int p, const Params& params,
                                        util::ThreadPool* pool) {
  require_valid(params);
  if (max_lifespan < 0) throw std::invalid_argument("evaluate_policy_grid: bad lifespan");
  if (p < 0) throw std::invalid_argument("evaluate_policy_grid: bad p");

  std::vector<Ticks> level = compute_level(policy, max_lifespan, 0, params,
                                           /*next_level=*/nullptr, pool);
  for (int q = 1; q <= p; ++q) {
    level = compute_level(policy, max_lifespan, q, params, &level, pool);
  }
  return level;
}

Ticks evaluate_policy(const SchedulingPolicy& policy, Ticks lifespan, int p,
                      const Params& params, util::ThreadPool* pool) {
  const auto grid = evaluate_policy_grid(policy, lifespan, p, params, pool);
  return grid[static_cast<std::size_t>(lifespan)];
}

BestResponse best_response(const SchedulingPolicy& policy, Ticks lifespan, int p,
                           const Params& params, util::ThreadPool* pool) {
  require_valid(params);
  // Keep all levels so the optimal play can be walked forward.
  std::vector<std::vector<Ticks>> levels;  // levels[q]
  levels.push_back(compute_level(policy, lifespan, 0, params, nullptr, pool));
  for (int q = 1; q <= p; ++q) {
    levels.push_back(compute_level(policy, lifespan, q, params, &levels.back(), pool));
  }

  BestResponse out;
  out.value = levels[static_cast<std::size_t>(p)][static_cast<std::size_t>(lifespan)];

  Ticks l = lifespan;
  int q = p;
  while (l > 0) {
    const EpisodeSchedule sched = policy.episode(l, q, params);
    AdversaryMove move;
    move.episode_lifespan = l;
    move.interrupts_left = q;

    const Ticks target = levels[static_cast<std::size_t>(q)][static_cast<std::size_t>(l)];
    const Ticks uninterrupted = sched.work_if_uninterrupted(params);

    // Prefer interrupting (the paper's Observation (b): the adversary always
    // interrupts while it can); fall back to letting the episode run.
    bool placed = false;
    if (q > 0) {
      const auto& next = levels[static_cast<std::size_t>(q - 1)];
      Ticks banked = 0;
      for (std::size_t k = 0; k < sched.size() && !placed; ++k) {
        const Ticks rest = positive_sub(l, sched.end(k));
        if (banked + next[static_cast<std::size_t>(rest)] == target) {
          move.killed = k;
          move.banked = banked;
          out.moves.push_back(move);
          l = rest;
          --q;
          placed = true;
        }
        banked += positive_sub(sched.period(k), params.c);
      }
    }
    if (!placed) {
      // No interrupt achieves the minimum: the episode runs to completion.
      if (uninterrupted != target) {
        throw std::logic_error("best_response: no adversary option attains the value");
      }
      move.banked = uninterrupted;
      out.moves.push_back(move);
      break;
    }
  }
  return out;
}

}  // namespace nowsched::solver
