#include "solver/fast_solver.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <span>
#include <thread>
#include <vector>

namespace nowsched::solver {

namespace {

/// max_{t in [c, l]} min((t−c) + cur[l−t], prev[l−t]) — the crossover scan.
/// Reads cur[] only at indices <= l − c. Returns 0 when l < c.
Ticks crossover_best(std::span<const Ticks> cur, std::span<const Ticks> prev, Ticks l,
                     Ticks c) {
  if (l < c) return 0;
  auto a = [&](Ticks t) {
    return (t - c) + cur[static_cast<std::size_t>(l - t)];
  };
  auto b = [&](Ticks t) { return prev[static_cast<std::size_t>(l - t)]; };

  // Binary search the last t in [c, l] with A(t) < B(t); A is non-decreasing
  // and B non-increasing, so the predicate A<B is monotone (true then false).
  Ticks lo = c, hi = l;
  if (!(a(lo) < b(lo))) {
    // Crossover at or before c: the best candidate is t = c itself.
    return std::min(a(lo), b(lo));
  }
  if (a(hi) < b(hi)) {
    // Never crosses: min is A, maximized at t = l.
    return a(hi);
  }
  while (lo + 1 < hi) {
    const Ticks mid = lo + (hi - lo) / 2;
    if (a(mid) < b(mid)) lo = mid;
    else hi = mid;
  }
  // lo: last t with A<B (min = A there); hi = lo+1: first t with A>=B.
  return std::max(a(lo), b(hi));
}

/// One fused pass over lifespans [lo, hi): crossover scan + carry merge.
/// Requires cur[] and prev[] final at every index < lo (and prev also at
/// the indices < lo the scans reach — same bound).
void fill_range(std::span<Ticks> cur, std::span<const Ticks> prev, Ticks lo,
                Ticks hi, Ticks c) {
  for (Ticks l = lo; l < hi; ++l) {
    cur[static_cast<std::size_t>(l)] =
        std::max(crossover_best(cur, prev, l, c),
                 cur[static_cast<std::size_t>(l - 1)]);
  }
}

/// Measured cost of one crossover binary-search step (a couple of indexed
/// reads and compares), sampled once per process on a synthetic 1-Lipschitz
/// table. Feeds the plan_wavefront cell-cost model so the engagement
/// threshold tracks the machine it runs on instead of a hardcoded c bound.
double scan_step_ns() {
  static const double measured = [] {
    constexpr Ticks kN = 1 << 12;
    constexpr Ticks kC = 64;
    std::vector<Ticks> prev(static_cast<std::size_t>(kN) + 1);
    std::vector<Ticks> cur(static_cast<std::size_t>(kN) + 1, 0);
    for (Ticks l = 0; l <= kN; ++l) {
      prev[static_cast<std::size_t>(l)] = positive_sub(l, kC);
    }
    const auto start = std::chrono::steady_clock::now();
    fill_range(cur, prev, 1, kN + 1, kC);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double total_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    // ~log2(N) search steps per lifespan.
    const double steps =
        static_cast<double>(kN) * std::log2(static_cast<double>(kN));
    volatile Ticks sink = cur[static_cast<std::size_t>(kN)];
    (void)sink;
    return std::max(0.1, total_ns / steps);
  }();
  return measured;
}

}  // namespace

WavefrontPlan plan_wavefront(int max_p, Ticks max_lifespan, const Params& params,
                             util::ThreadPool* pool) {
  WavefrontPlan plan;
  const Ticks c = params.c;
  plan.num_blocks =
      max_lifespan > 0
          ? static_cast<std::size_t>((max_lifespan + c - 1) / c)
          : 0;
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t pool_threads = pool != nullptr ? pool->size() : 1;
  plan.width = static_cast<int>(std::min<std::size_t>(
      {static_cast<std::size_t>(std::max(max_p, 0)), pool_threads, hw}));

  if (pool == nullptr) {
    plan.reason = "no pool";
    return plan;
  }
  plan.dispatch_ns = pool->dispatch_overhead_ns();
  plan.cell_ns_estimate = scan_step_ns() * static_cast<double>(c) *
                          std::log2(static_cast<double>(max_lifespan) + 2.0);
  if (plan.width < 2) {
    // Fewer than two cells can ever run concurrently (single level, single
    // pool thread, or a 1-core machine) — the wavefront can only lose.
    plan.reason = "DAG width < 2";
    return plan;
  }
  if (plan.num_blocks < 3) {
    plan.reason = "too few blocks to fill the pipeline";
    return plan;
  }
  // Engage only when a cell's own work clearly amortizes its dispatch. The
  // margin covers model error and the pipeline's fill/drain slack; at the
  // margin the wavefront is near break-even, comfortably past it the win
  // approaches the width.
  constexpr double kEngageMargin = 8.0;
  if (plan.cell_ns_estimate < kEngageMargin * plan.dispatch_ns) {
    plan.reason = "cell work does not amortize dispatch overhead";
    return plan;
  }
  plan.engage = true;
  plan.reason = "engaged";
  return plan;
}

ValueTable solve_fast(int max_p, Ticks max_lifespan, const Params& params,
                      util::ThreadPool* pool, ParallelMode mode) {
  ValueTable table(max_p, max_lifespan, params);
  const Ticks c = params.c;

  auto level0 = table.mutable_level(0);
  for (Ticks l = 0; l <= max_lifespan; ++l) {
    level0[static_cast<std::size_t>(l)] = positive_sub(l, c);
  }

  bool wavefront = false;
  switch (mode) {
    case ParallelMode::kForceSequential:
      break;
    case ParallelMode::kForceWavefront:
      wavefront = pool != nullptr && max_p >= 1 && max_lifespan >= 1;
      break;
    case ParallelMode::kAuto:
      wavefront = max_p >= 1 && max_lifespan >= 1 &&
                  plan_wavefront(max_p, max_lifespan, params, pool).engage;
      break;
  }

  if (!wavefront) {
    for (int p = 1; p <= max_p; ++p) {
      fill_range(table.mutable_level(p), table.level(p - 1), 1, max_lifespan + 1,
                 c);
    }
    return table;
  }

  // Wavefront over the (level, block) grid: block b of level p covers
  // lifespans [1 + b·c, 1 + (b+1)·c) ∩ [1, max_lifespan]. Cell (p, b) reads
  //   * cur  = level p   at indices <= l − c < block start  → cells (p, <b),
  //   * prev = level p−1 at the same indices                → cells (p−1, <b),
  // so its only direct dependencies are (p, b−1) and (p−1, b−1); everything
  // earlier follows transitively along those chains. Level 0 and every
  // level's l = 0 entry are final before the graph starts (filled above /
  // zero-initialized). One task per cell, zero barriers.
  const std::size_t num_blocks =
      static_cast<std::size_t>((max_lifespan + c - 1) / c);
  util::TaskGraph graph;
  auto cell_id = [num_blocks](int p, std::size_t b) {
    return static_cast<std::size_t>(p - 1) * num_blocks + b;
  };
  for (int p = 1; p <= max_p; ++p) {
    const std::span<Ticks> cur = table.mutable_level(p);
    const std::span<const Ticks> prev = table.level(p - 1);
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const Ticks lo = 1 + static_cast<Ticks>(b) * c;
      const Ticks hi = std::min(max_lifespan + 1, lo + c);
      const util::TaskGraph::TaskId id =
          graph.add_task([cur, prev, lo, hi, c] { fill_range(cur, prev, lo, hi, c); });
      assert(id == cell_id(p, b));
      (void)id;
      if (b > 0) {
        graph.add_edge(cell_id(p, b - 1), cell_id(p, b));
        if (p > 1) graph.add_edge(cell_id(p - 1, b - 1), cell_id(p, b));
      }
    }
  }
  pool->run_dag(graph);
  return table;
}

}  // namespace nowsched::solver
