#include "solver/fast_solver.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "solver/fill_kernel.h"
#include "util/simd.h"

// Which ISA-specific kernel TUs are linked into the library. CMake defines
// these alongside adding the matching fast_solver_<isa>.cpp source; without
// the definition the dispatcher must not even reference the symbol.
#ifndef NOWSCHED_HAVE_AVX2
#define NOWSCHED_HAVE_AVX2 0
#endif
#ifndef NOWSCHED_HAVE_NEON
#define NOWSCHED_HAVE_NEON 0
#endif

namespace nowsched::solver {

namespace {

/// max_{t in [c, l]} min((t−c) + cur[l−t], prev[l−t]) — the legacy
/// per-lifespan binary search. Kept as the in-tree reference the two-pointer
/// kernels are differentially tested against (and the E10 speedup baseline).
/// Reads cur[] only at indices <= l − c. Returns 0 when l < c.
Ticks crossover_best_legacy(std::span<const Ticks> cur,
                            std::span<const Ticks> prev, Ticks l, Ticks c,
                            std::size_t& probes) {
  if (l < c) {
    ++probes;
    return 0;
  }
  auto a = [&](Ticks t) {
    return (t - c) + cur[static_cast<std::size_t>(l - t)];
  };
  auto b = [&](Ticks t) { return prev[static_cast<std::size_t>(l - t)]; };

  // Binary search the last t in [c, l] with A(t) < B(t); A is non-decreasing
  // and B non-increasing, so the predicate A<B is monotone (true then false).
  Ticks lo = c, hi = l;
  probes += 2;
  if (!(a(lo) < b(lo))) {
    // Crossover at or before c: the best candidate is t = c itself.
    return std::min(a(lo), b(lo));
  }
  if (a(hi) < b(hi)) {
    // Never crosses: min is A, maximized at t = l.
    return a(hi);
  }
  while (lo + 1 < hi) {
    const Ticks mid = lo + (hi - lo) / 2;
    ++probes;
    if (a(mid) < b(mid)) lo = mid;
    else hi = mid;
  }
  // lo: last t with A<B (min = A there); hi = lo+1: first t with A>=B.
  return std::max(a(lo), b(hi));
}

/// One fused legacy pass over lifespans [lo, hi): crossover scan + carry.
void fill_range_legacy(std::span<Ticks> cur, std::span<const Ticks> prev,
                       Ticks lo, Ticks hi, Ticks c, std::size_t* steps) {
  std::size_t probes = 0;
  for (Ticks l = lo; l < hi; ++l) {
    cur[static_cast<std::size_t>(l)] =
        std::max(crossover_best_legacy(cur, prev, l, c, probes),
                 cur[static_cast<std::size_t>(l - 1)]);
  }
  if (steps != nullptr) *steps += probes + static_cast<std::size_t>(hi - lo);
}

SolverKernel auto_solver_kernel() {
#if NOWSCHED_HAVE_AVX2
  if (util::simd::cpu_supports_avx2()) return SolverKernel::kAvx2;
#endif
#if NOWSCHED_HAVE_NEON
  if (util::simd::cpu_supports_neon()) return SolverKernel::kNeon;
#endif
  return SolverKernel::kScalar;
}

/// -1 = no force; otherwise the forced kernel's enum value.
std::atomic<int> g_forced_kernel{-1};

SolverKernel env_or_auto_kernel() {
  static const SolverKernel resolved = [] {
    std::string warning;
    const std::optional<SolverKernel> pinned =
        solver_kernel_from_env_value(std::getenv("NOWSCHED_KERNEL"), &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "nowsched: %s\n", warning.c_str());
    }
    return pinned.value_or(auto_solver_kernel());
  }();
  return resolved;
}

}  // namespace

const char* solver_kernel_name(SolverKernel kernel) noexcept {
  switch (kernel) {
    case SolverKernel::kLegacy: return "legacy";
    case SolverKernel::kScalar: return "scalar";
    case SolverKernel::kAvx2: return "avx2";
    case SolverKernel::kNeon: return "neon";
  }
  return "unknown";
}

std::optional<SolverKernel> solver_kernel_from_name(
    std::string_view name) noexcept {
  if (name == "legacy") return SolverKernel::kLegacy;
  if (name == "scalar") return SolverKernel::kScalar;
  if (name == "avx2") return SolverKernel::kAvx2;
  if (name == "neon") return SolverKernel::kNeon;
  return std::nullopt;
}

bool solver_kernel_supported(SolverKernel kernel) noexcept {
  switch (kernel) {
    case SolverKernel::kLegacy:
    case SolverKernel::kScalar:
      return true;
    case SolverKernel::kAvx2:
#if NOWSCHED_HAVE_AVX2
      return util::simd::cpu_supports_avx2();
#else
      return false;
#endif
    case SolverKernel::kNeon:
#if NOWSCHED_HAVE_NEON
      return util::simd::cpu_supports_neon();
#else
      return false;
#endif
  }
  return false;
}

std::vector<SolverKernel> supported_solver_kernels() {
  std::vector<SolverKernel> kernels;
  for (SolverKernel k : {SolverKernel::kAvx2, SolverKernel::kNeon,
                         SolverKernel::kScalar, SolverKernel::kLegacy}) {
    if (solver_kernel_supported(k)) kernels.push_back(k);
  }
  return kernels;
}

SolverKernel active_solver_kernel() {
  const int forced = g_forced_kernel.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SolverKernel>(forced);
  return env_or_auto_kernel();
}

void force_solver_kernel(SolverKernel kernel) {
  if (!solver_kernel_supported(kernel)) {
    throw std::invalid_argument(
        std::string("force_solver_kernel: kernel \"") +
        solver_kernel_name(kernel) + "\" is not supported by this build/CPU");
  }
  g_forced_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

void clear_forced_solver_kernel() noexcept {
  g_forced_kernel.store(-1, std::memory_order_relaxed);
}

std::optional<SolverKernel> solver_kernel_from_env_value(const char* value,
                                                         std::string* warning) {
  if (warning != nullptr) warning->clear();
  if (value == nullptr) return std::nullopt;
  const std::string s(value);
  auto fail = [&](const char* why) -> std::optional<SolverKernel> {
    if (warning != nullptr) {
      *warning = "NOWSCHED_KERNEL=\"" + s + "\" " + why +
                 "; using auto kernel dispatch";
    }
    return std::nullopt;
  };
  if (s == "auto") return std::nullopt;
  if (s.empty()) return fail("is empty (expected legacy|scalar|avx2|neon|auto)");
  const std::optional<SolverKernel> kernel = solver_kernel_from_name(s);
  if (!kernel) return fail("is not a known kernel (expected legacy|scalar|avx2|neon|auto)");
  if (!solver_kernel_supported(*kernel)) {
    return fail("names a kernel this build/CPU cannot run");
  }
  return kernel;
}

void run_fill_kernel(SolverKernel kernel, std::span<Ticks> cur,
                     std::span<const Ticks> prev, Ticks lo, Ticks hi, Ticks c,
                     std::size_t* scan_steps) {
  if (!solver_kernel_supported(kernel)) {
    throw std::invalid_argument(
        std::string("run_fill_kernel: kernel \"") + solver_kernel_name(kernel) +
        "\" is not supported by this build/CPU");
  }
  switch (kernel) {
    case SolverKernel::kLegacy:
      fill_range_legacy(cur, prev, lo, hi, c, scan_steps);
      return;
    case SolverKernel::kScalar:
      detail::fill_range_two_phase<util::simd::I64Scalar>(cur, prev, lo, hi, c,
                                                          scan_steps);
      return;
    case SolverKernel::kAvx2:
#if NOWSCHED_HAVE_AVX2
      detail::fill_range_avx2(cur, prev, lo, hi, c, scan_steps);
      return;
#else
      break;
#endif
    case SolverKernel::kNeon:
#if NOWSCHED_HAVE_NEON
      detail::fill_range_neon(cur, prev, lo, hi, c, scan_steps);
      return;
#else
      break;
#endif
  }
  // Unreachable: solver_kernel_supported() already rejected these.
  throw std::logic_error("run_fill_kernel: unreachable kernel dispatch");
}

double modeled_scan_steps(SolverKernel kernel, Ticks c, Ticks lo, Ticks hi) {
  if (hi <= lo) return 0.0;
  const double n = static_cast<double>(hi - lo);
  const double below_c =
      static_cast<double>(std::clamp<Ticks>(std::min(hi, c) - lo, 0, hi - lo));
  const double scanned = n - below_c;
  if (kernel == SolverKernel::kLegacy) {
    // Per scanned lifespan: 2 boundary probes + a binary search over [c, l],
    // ~log2(l − c) halvings. Summed exactly via lgamma:
    //   sum_{n=a}^{b} log2(n) = (lgamma(b+1) − lgamma(a)) / ln 2.
    // (The old model charged log2(table size) per lifespan — the search
    // range is l − c, which is what the depth actually tracks.)
    double depth = 0.0;
    const Ticks a0 = std::max<Ticks>(lo - c, 1);
    const Ticks b0 = hi - 1 - c;
    if (b0 >= a0) {
      depth = (std::lgamma(static_cast<double>(b0) + 1.0) -
               std::lgamma(static_cast<double>(a0))) /
              std::log(2.0);
    }
    return n + below_c + 2.0 * scanned + depth;
  }
  // Two-pointer kernels: one carry merge per lifespan, ~2 probes per scanned
  // lifespan (amortized advance + stop peek), plus the block's one-off seed
  // search for k(lo − c).
  const double seed =
      std::log2(std::max(2.0, static_cast<double>(lo - c)));
  return n + 2.0 * scanned + seed;
}

namespace {

constexpr double kMinStepNs = 0.05;
constexpr double kMaxStepNs = 25.0;

struct CalibrationState {
  std::mutex mu;
  ScanCalibration cal;  // generation == 0 → never measured
};

CalibrationState& calibration_state() {
  static CalibrationState state;
  return state;
}

/// Times the given kernel over a synthetic 1-Lipschitz table (best of three
/// runs) and converts to per-probe cost via the same step model
/// plan_wavefront uses. The clamp bounds the damage a pathological
/// measurement (TSan, debugger, load spike) can do: a poisoned value can
/// bias the engagement margin, never destroy it — and recalibrate_scan_cost
/// lets callers repair even that.
ScanCalibration measure_scan_cost(SolverKernel kernel, std::uint64_t generation) {
  constexpr Ticks kN = 1 << 14;
  constexpr Ticks kC = 64;
  std::vector<Ticks> prev(static_cast<std::size_t>(kN) + 1);
  std::vector<Ticks> cur(static_cast<std::size_t>(kN) + 1, 0);
  for (Ticks l = 0; l <= kN; ++l) {
    prev[static_cast<std::size_t>(l)] = positive_sub(l, kC);
  }
  double best_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    std::fill(cur.begin(), cur.end(), 0);
    const auto start = std::chrono::steady_clock::now();
    run_fill_kernel(kernel, cur, prev, 1, kN + 1, kC);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    best_ns = std::min(
        best_ns,
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
    volatile Ticks sink = cur[static_cast<std::size_t>(kN)];
    (void)sink;
  }
  const double steps = modeled_scan_steps(kernel, kC, 1, kN + 1);
  const double raw = best_ns / std::max(1.0, steps);
  ScanCalibration cal;
  cal.kernel = kernel;
  cal.generation = generation;
  if (raw < kMinStepNs) {
    cal.step_ns = kMinStepNs;
    cal.source = "clamped-low";
  } else if (raw > kMaxStepNs) {
    cal.step_ns = kMaxStepNs;
    cal.source = "clamped-high";
  } else {
    cal.step_ns = raw;
    cal.source = "measured";
  }
  return cal;
}

}  // namespace

ScanCalibration scan_calibration() {
  const SolverKernel kernel = active_solver_kernel();
  CalibrationState& state = calibration_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.cal.generation == 0 || state.cal.kernel != kernel) {
    state.cal = measure_scan_cost(kernel, state.cal.generation + 1);
  }
  return state.cal;
}

ScanCalibration recalibrate_scan_cost() {
  const SolverKernel kernel = active_solver_kernel();
  CalibrationState& state = calibration_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.cal = measure_scan_cost(kernel, state.cal.generation + 1);
  return state.cal;
}

WavefrontPlan plan_wavefront(int max_p, Ticks max_lifespan, const Params& params,
                             util::ThreadPool* pool) {
  WavefrontPlan plan;
  const Ticks c = params.c;
  plan.num_blocks =
      max_lifespan > 0
          ? static_cast<std::size_t>((max_lifespan + c - 1) / c)
          : 0;
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t pool_threads = pool != nullptr ? pool->size() : 1;
  plan.width = static_cast<int>(std::min<std::size_t>(
      {static_cast<std::size_t>(std::max(max_p, 0)), pool_threads, hw}));

  auto finish = [&plan](const char* why) -> WavefrontPlan& {
    plan.reason = why;
    if (plan.calibration.generation != 0) {
      plan.reason += std::string(" [scan-step ") + plan.calibration.source +
                     ", kernel " + solver_kernel_name(plan.calibration.kernel) +
                     "]";
    }
    return plan;
  };

  if (pool == nullptr) {
    return finish("no pool");
  }
  plan.dispatch_ns = pool->dispatch_overhead_ns();
  plan.calibration = scan_calibration();
  const double level_steps =
      modeled_scan_steps(plan.calibration.kernel, c, 1, max_lifespan + 1);
  plan.cell_ns_estimate =
      plan.calibration.step_ns * level_steps /
      static_cast<double>(std::max<std::size_t>(1, plan.num_blocks));
  if (plan.width < 2) {
    // Fewer than two cells can ever run concurrently (single level, single
    // pool thread, or a 1-core machine) — the wavefront can only lose.
    return finish("DAG width < 2");
  }
  if (plan.num_blocks < 3) {
    return finish("too few blocks to fill the pipeline");
  }
  // Engage only when a cell's own work clearly amortizes its dispatch. The
  // margin covers model error and the pipeline's fill/drain slack; at the
  // margin the wavefront is near break-even, comfortably past it the win
  // approaches the width.
  constexpr double kEngageMargin = 8.0;
  if (plan.cell_ns_estimate < kEngageMargin * plan.dispatch_ns) {
    return finish("cell work does not amortize dispatch overhead");
  }
  plan.engage = true;
  return finish("engaged");
}

ValueTable solve_fast(int max_p, Ticks max_lifespan, const Params& params,
                      util::ThreadPool* pool, ParallelMode mode) {
  ValueTable table(max_p, max_lifespan, params);
  const Ticks c = params.c;
  const SolverKernel kernel = active_solver_kernel();

  auto level0 = table.mutable_level(0);
  for (Ticks l = 0; l <= max_lifespan; ++l) {
    level0[static_cast<std::size_t>(l)] = positive_sub(l, c);
  }

  bool wavefront = false;
  switch (mode) {
    case ParallelMode::kForceSequential:
      break;
    case ParallelMode::kForceWavefront:
      wavefront = pool != nullptr && max_p >= 1 && max_lifespan >= 1;
      break;
    case ParallelMode::kAuto:
      wavefront = max_p >= 1 && max_lifespan >= 1 &&
                  plan_wavefront(max_p, max_lifespan, params, pool).engage;
      break;
  }

  if (!wavefront) {
    for (int p = 1; p <= max_p; ++p) {
      run_fill_kernel(kernel, table.mutable_level(p), table.level(p - 1), 1,
                      max_lifespan + 1, c);
    }
    return table;
  }

  // Wavefront over the (level, block) grid: block b of level p covers
  // lifespans [1 + b·c, 1 + (b+1)·c) ∩ [1, max_lifespan]. Cell (p, b) reads
  //   * cur  = level p   at indices <= l − c < block start  → cells (p, <b),
  //   * prev = level p−1 at the same indices                → cells (p−1, <b),
  // so its only direct dependencies are (p, b−1) and (p−1, b−1); everything
  // earlier follows transitively along those chains. (The two-phase kernel
  // keeps this contract — see fill_kernel.h "Read bounds".) Level 0 and
  // every level's l = 0 entry are final before the graph starts (filled
  // above / zero-initialized). One task per cell, zero barriers.
  const std::size_t num_blocks =
      static_cast<std::size_t>((max_lifespan + c - 1) / c);
  util::TaskGraph graph;
  auto cell_id = [num_blocks](int p, std::size_t b) {
    return static_cast<std::size_t>(p - 1) * num_blocks + b;
  };
  for (int p = 1; p <= max_p; ++p) {
    const std::span<Ticks> cur = table.mutable_level(p);
    const std::span<const Ticks> prev = table.level(p - 1);
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const Ticks lo = 1 + static_cast<Ticks>(b) * c;
      const Ticks hi = std::min(max_lifespan + 1, lo + c);
      const util::TaskGraph::TaskId id = graph.add_task([kernel, cur, prev, lo, hi, c] {
        run_fill_kernel(kernel, cur, prev, lo, hi, c);
      });
      assert(id == cell_id(p, b));
      (void)id;
      if (b > 0) {
        graph.add_edge(cell_id(p, b - 1), cell_id(p, b));
        if (p > 1) graph.add_edge(cell_id(p - 1, b - 1), cell_id(p, b));
      }
    }
  }
  pool->run_dag(graph);
  return table;
}

}  // namespace nowsched::solver
