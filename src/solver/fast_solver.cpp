#include "solver/fast_solver.h"

#include <algorithm>
#include <cassert>
#include <span>

namespace nowsched::solver {

namespace {

/// max_{t in [c, l]} min((t−c) + cur[l−t], prev[l−t]) — the crossover scan.
/// Reads cur[] only at indices <= l − c. Returns 0 when l < c.
Ticks crossover_best(std::span<const Ticks> cur, std::span<const Ticks> prev, Ticks l,
                     Ticks c) {
  if (l < c) return 0;
  auto a = [&](Ticks t) {
    return (t - c) + cur[static_cast<std::size_t>(l - t)];
  };
  auto b = [&](Ticks t) { return prev[static_cast<std::size_t>(l - t)]; };

  // Binary search the last t in [c, l] with A(t) < B(t); A is non-decreasing
  // and B non-increasing, so the predicate A<B is monotone (true then false).
  Ticks lo = c, hi = l;
  if (!(a(lo) < b(lo))) {
    // Crossover at or before c: the best candidate is t = c itself.
    return std::min(a(lo), b(lo));
  }
  if (a(hi) < b(hi)) {
    // Never crosses: min is A, maximized at t = l.
    return a(hi);
  }
  while (lo + 1 < hi) {
    const Ticks mid = lo + (hi - lo) / 2;
    if (a(mid) < b(mid)) lo = mid;
    else hi = mid;
  }
  // lo: last t with A<B (min = A there); hi = lo+1: first t with A>=B.
  return std::max(a(lo), b(hi));
}

}  // namespace

ValueTable solve_fast(int max_p, Ticks max_lifespan, const Params& params,
                      util::ThreadPool* pool) {
  ValueTable table(max_p, max_lifespan, params);
  const Ticks c = params.c;
  const auto n = static_cast<std::size_t>(max_lifespan);

  auto level0 = table.mutable_level(0);
  for (Ticks l = 0; l <= max_lifespan; ++l) {
    level0[static_cast<std::size_t>(l)] = positive_sub(l, c);
  }

  for (int p = 1; p <= max_p; ++p) {
    auto cur = table.mutable_level(p);
    auto prev = table.level(p - 1);
    cur[0] = 0;

    const bool parallel = pool != nullptr && pool->size() > 1 && c >= 256 &&
                          max_lifespan > 4 * c;
    if (!parallel) {
      for (Ticks l = 1; l <= max_lifespan; ++l) {
        const Ticks best = crossover_best(cur, prev, l, c);
        cur[static_cast<std::size_t>(l)] =
            std::max(best, cur[static_cast<std::size_t>(l - 1)]);
      }
      continue;
    }

    // Block-parallel: within [block, block + c) the scans only read cur[]
    // below the block start, which is already final.
    for (Ticks block = 1; block <= max_lifespan; block += c) {
      const Ticks block_end = std::min(max_lifespan + 1, block + c);
      pool->parallel_for_chunks(
          static_cast<std::size_t>(block), static_cast<std::size_t>(block_end),
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t l = lo; l < hi; ++l) {
              cur[l] = crossover_best(cur, prev, static_cast<Ticks>(l), c);
            }
          });
      // Sequential carry merge for this block.
      for (Ticks l = block; l < block_end; ++l) {
        cur[static_cast<std::size_t>(l)] =
            std::max(cur[static_cast<std::size_t>(l)],
                     cur[static_cast<std::size_t>(l - 1)]);
      }
    }
    (void)n;
  }
  return table;
}

}  // namespace nowsched::solver
