// AVX2 instantiation of the two-phase level-fill kernel. This TU is the
// only one compiled with -mavx2 (set per-source in CMakeLists), so the
// intrinsics stay out of every baseline-ISA object file; the dispatcher in
// fast_solver.cpp only calls fill_range_avx2 after cpu_supports_avx2().
#include "solver/fill_kernel.h"

#if defined(__AVX2__)

namespace nowsched::solver::detail {

void fill_range_avx2(std::span<Ticks> cur, std::span<const Ticks> prev,
                     Ticks lo, Ticks hi, Ticks c, std::size_t* steps) {
  fill_range_two_phase<util::simd::I64x4Avx2>(cur, prev, lo, hi, c, steps);
}

}  // namespace nowsched::solver::detail

#endif  // __AVX2__
