// Local-search optimizer over *committed* (non-adaptive) schedules.
//
// §3.1 derives the optimal EQUAL-period schedule and the paper asserts (via
// elementary calculus) that it cannot be improved. That argument covers the
// equal-length family; this optimizer searches the full space of committed
// schedules (arbitrary period lengths, fixed only by Σt = U) under the exact
// best-response evaluator, providing an empirical upper bound on what any
// committed schedule can guarantee — and thereby a check that the equal
// family is (or is not) globally optimal on the grid.
//
// Search moves, applied in rounds with a shrinking step δ:
//   * transfer δ ticks between period i and period j (all ordered pairs of
//     a sampled subset when m is large),
//   * split a period in half,
//   * merge two adjacent periods.
// Hill climbing with first-improvement; deterministic given the seed.
#pragma once

#include <cstdint>

#include "core/schedule.h"
#include "solver/nonadaptive_eval.h"

namespace nowsched::solver {

struct CommittedSearchOptions {
  int max_rounds = 24;           ///< δ-halving rounds
  std::size_t pair_samples = 64; ///< sampled (i, j) pairs per round when m large
  std::uint64_t seed = 1;
};

struct CommittedSearchResult {
  EpisodeSchedule schedule;
  Ticks value = 0;          ///< guaranteed work of `schedule`
  Ticks start_value = 0;    ///< guaranteed work of the §3.1 seed schedule
  int improving_moves = 0;  ///< accepted moves
};

/// Starts from the §3.1 guideline and hill-climbs. The returned value is
/// always >= the seed's value.
CommittedSearchResult optimize_committed(Ticks lifespan, int p, const Params& params,
                                         const CommittedSearchOptions& options = {});

}  // namespace nowsched::solver
