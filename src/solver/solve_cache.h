// Tiered memoization of solve_fast results, and the shared_ptr-returning
// solve entry point the cache (and sim::BatchRunner) is built on.
//
// A W(p)[L] table is expensive to compute and cheap to share: it is
// immutable after solve_fast returns, and solver::OptimalPolicy already
// holds its table through a shared_ptr. The cache exploits both facts —
// requests are canonicalized to a SolveKey, and lookup walks the tiers:
//
//   1. RAM tier (ResidentTableStore)        → hit
//   2. in-flight solve for the same key     → wait on its shared_future (hit)
//   3. persistent tier (Options::store)     → store_hit (mmap, zero-copy)
//   4. solve_fast                           → solve, then SPILL to the store
//
// The storage half of the old monolithic cache now lives behind the
// solver::TableStore interface (solver/table_store.h); what remains here is
// the concurrency protocol. Requests hash onto one of S in-flight stripes
// (util::StripedMutex stripe i guards stripe i's map), and concurrent
// requests for one key perform exactly ONE solve: the first thread computes
// outside the lock while later threads block on the future, not the stripe
// mutex. The resident tier is probed and populated UNDER the in-flight
// stripe lock (lock order: in-flight stripe → resident stripe, never
// reversed), which closes the window where a finished table has left the
// in-flight map but not yet reached the resident tier — the exactly-once
// guarantee is a tested invariant, not best-effort.
//
// Canonicalization (canonical_key, solver/solve_key.h) rounds max_lifespan
// up to the next multiple of c. This is semantically transparent — every
// W(p)[L] entry of the smaller table appears bit-identically in the larger
// one (the DP recurrence for (p, L) reads only states with smaller L), and
// extract_episode / OptimalPolicy read only entries the original request
// covers — but it folds near-identical scenario populations onto one table
// AND onto one store file: the canonical key is what the persistent tier
// content-addresses.
//
// Determinism across tiers: a solve is a pure function of the canonical
// key, the store checksums what it persists, and a mapped table is an
// immutable view over the file's pages — so whichever tier answers, the
// caller sees the same bits (tests/conformance pins this per field).
// Counters: hits + misses == completed get_or_solve calls, and
// misses == fresh solves + store_hits — the persistent tier converts
// would-be solves into mmap reads, it never changes results.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <unordered_map>
#include <vector>

#include "solver/solve_key.h"
#include "solver/table_store.h"
#include "solver/value_table.h"
#include "util/striped_lock.h"
#include "util/thread_pool.h"

namespace nowsched::solver {

/// Solves the canonical form of `req` and returns the immutable table by
/// shared_ptr — the entry point OptimalPolicy plugs into directly. No
/// caching; SolveCache calls this on a full miss. `pool` is forwarded to
/// solve_fast (pass nullptr from inside pool tasks — run_dag is not
/// reentrant).
std::shared_ptr<const ValueTable> solve_shared(const SolveRequest& req,
                                               util::ThreadPool* pool = nullptr);

/// Lifetime counters. hits + misses == completed get_or_solve calls;
/// misses == (fresh solves) + store_hits; entries/evictions/resident_bytes
/// describe the resident set.
struct SolveCacheStats {
  std::uint64_t hits = 0;        ///< RAM tier hits + waits on in-flight solves
  std::uint64_t misses = 0;      ///< requests no RAM tier could answer
  std::uint64_t store_hits = 0;  ///< misses answered by the persistent tier
                                 ///< (a mapped read instead of a solve)
  std::uint64_t spills = 0;      ///< fresh solves newly persisted to the store
  std::uint64_t evictions = 0;
  std::size_t entries = 0;       ///< resident tables + in-flight solves
  /// Bytes of finished resident tables (in-flight solves count 0 until
  /// their size is known).
  std::size_t resident_bytes = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class SolveCache {
 public:
  struct Options {
    /// Stripe/shard count; rounded up to a power of two. Shared by the
    /// in-flight map and the resident tier (same platform-stable key hash).
    std::size_t shards = 8;
    /// Total byte budget for resident tables across all shards (split
    /// evenly). Each shard always keeps its most recently used table even
    /// when it alone exceeds the slice.
    std::size_t max_bytes = 64u << 20;  // 64 MiB
    /// Optional persistent tier probed on a RAM miss and spilled to after a
    /// fresh solve (typically a MappedTableStore; see table_store.h).
    /// Shared_ptr so many caches — one per tenant — can mount ONE warm
    /// store; TableStore implementations are thread-safe. nullptr = the
    /// cache is purely resident, exactly the old behavior.
    std::shared_ptr<TableStore> store;
  };

  SolveCache();  // default Options
  explicit SolveCache(Options options);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Returns the table for canonical_key(req), solving it at most once per
  /// residency no matter how many threads ask concurrently. A solve that
  /// throws is not cached: the exception propagates to every waiter of that
  /// attempt and the key is cleared so a later call retries. Store probes
  /// and spills happen on the owner thread, outside every stripe lock.
  ///
  /// Safe to call from many threads, including ThreadPool workers — but
  /// then pass pool == nullptr (see solve_shared).
  std::shared_ptr<const ValueTable> get_or_solve(const SolveRequest& req,
                                                 util::ThreadPool* pool = nullptr);

  /// Point-in-time totals (counters are exact; `entries` sums shard sizes
  /// without a global lock, so it is approximate under concurrent writes).
  SolveCacheStats stats() const;

  /// Drops every resident table (in-flight solves complete and are dropped
  /// on arrival — they are neither promoted to the resident tier nor
  /// spilled). Counters are NOT reset; the persistent tier is NOT touched
  /// (it is shared state other caches may be reading).
  void clear();

  /// Re-budgets the RAM tier to `max_bytes` total (re-split evenly across
  /// shards) and immediately evicts LRU tables in every shard that no
  /// longer fits its slice. The keep-newest guarantee survives a shrink:
  /// each shard retains its most recently used table even when that table
  /// alone exceeds the new slice, so resizing to 0 degrades to
  /// one-table-per-shard rather than an always-cold cache. Growing never
  /// evicts. Thread-safe against concurrent get_or_solve/stats/clear; the
  /// service layer calls this for live per-tenant quota changes.
  void set_max_bytes(std::size_t max_bytes);

  /// Current total RAM-tier byte budget (Options or set_max_bytes).
  std::size_t max_bytes() const noexcept { return resident_.max_bytes(); }

  std::size_t shard_count() const noexcept { return stripes_.stripes(); }

  /// The persistent tier this cache spills to / reads from (nullptr when
  /// purely resident).
  const std::shared_ptr<TableStore>& store() const noexcept { return store_; }

 private:
  using TablePtr = std::shared_ptr<const ValueTable>;
  using Future = std::shared_future<TablePtr>;

  struct KeyHash {
    std::size_t operator()(const SolveKey& key) const noexcept {
      return static_cast<std::size_t>(key.hash());
    }
  };

  /// An in-flight solve. Finished tables do not live here — they move to
  /// the resident tier the moment the owner records them.
  struct Entry {
    Future future;
    std::uint64_t insert_id = 0;  ///< identity tag: which insertion this is
  };

  struct Shard {
    std::unordered_map<SolveKey, Entry, KeyHash> map;
    std::uint64_t next_id = 0;  ///< monotone per-shard insertion counter
  };

  // mutable: stats() is logically const but must lock in-flight stripes.
  mutable util::StripedMutex stripes_;
  std::vector<Shard> shards_;
  ResidentTableStore resident_;       ///< tier 1: finished tables in RAM
  std::shared_ptr<TableStore> store_; ///< tier 2: optional persistent store
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> store_hits_{0};
  std::atomic<std::uint64_t> spills_{0};
};

}  // namespace nowsched::solver
