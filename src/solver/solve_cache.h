// Sharded memoization of solve_fast results, and the shared_ptr-returning
// solve entry point the cache (and sim::BatchRunner) is built on.
//
// A W(p)[L] table is expensive to compute and cheap to share: it is
// immutable after solve_fast returns, and solver::OptimalPolicy already
// holds its table through a shared_ptr. The cache exploits both facts —
// requests are canonicalized to a SolveKey, hashed onto one of S shards
// (util::StripedMutex stripe i guards shard i's map), and resolved to a
// std::shared_future of the finished table so that concurrent requests for
// one key perform exactly ONE solve: the first thread computes outside the
// lock while later threads block on the future, not the stripe mutex.
//
// Canonicalization (canonical_key) rounds max_lifespan up to the next
// multiple of c. This is semantically transparent — every W(p)[L] entry of
// the smaller table appears bit-identically in the larger one (the DP
// recurrence for (p, L) reads only states with smaller L), and
// extract_episode / OptimalPolicy read only entries the original request
// covers — but it folds near-identical scenario populations onto one table.
// solve_shared applies the same canonicalization whether or not a cache
// sits in front of it, so cached and uncached runs see identical tables.
//
// Eviction is per-shard LRU against a BYTE budget: every finished table
// reports its slab size (ValueTable::bytes), each shard owns an equal slice
// of Options::max_bytes, and completing a solve evicts least-recently-used
// resident tables until the shard fits again. Entry count was the previous
// proxy and is a poor one under mixed-N batches (a 10⁶-lifespan table costs
// five orders of magnitude more than a 10¹ one); bytes are what the machine
// actually runs out of. In-flight solves weigh zero until they finish (their
// size is unknown) and every shard always keeps at least its most recent
// table, even when that table alone exceeds the slice — a cache that cannot
// hold the table it just built would thrash to zero hits. Hit/miss/evict
// counters are lifetime totals (monotone, never reset by eviction) exposed
// through stats() for benches and the E13 hit-rate report;
// stats().resident_bytes is the exact byte accounting the eviction loop
// maintains (tests pin it equal to the sum of resident slab sizes).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <unordered_map>
#include <vector>

#include "solver/value_table.h"
#include "util/hash.h"
#include "util/striped_lock.h"
#include "util/thread_pool.h"

namespace nowsched::solver {

/// What a caller wants solved, in caller terms (pre-canonicalization).
struct SolveRequest {
  int max_p = 0;
  Ticks max_lifespan = 0;
  Params params;
};

/// The canonical identity of a solve: two requests with equal SolveKeys are
/// served by one table. Produced by canonical_key; compared field-wise.
struct SolveKey {
  int max_p = 0;
  Ticks max_lifespan = 0;
  Ticks c = 1;

  bool operator==(const SolveKey&) const = default;

  /// Platform-stable hash (util::hash_combine, not std::hash) so shard
  /// assignment is identical across standard libraries.
  std::uint64_t hash() const noexcept {
    std::uint64_t h = util::hash_combine(0, static_cast<std::uint64_t>(max_p));
    h = util::hash_combine(h, static_cast<std::uint64_t>(max_lifespan));
    return util::hash_combine(h, static_cast<std::uint64_t>(c));
  }
};

/// Canonicalizes a request: clamps max_p / max_lifespan below at 0 and
/// rounds max_lifespan up to the next multiple of c (see header comment for
/// why that is transparent to every reader of the table). Throws
/// std::invalid_argument when params are invalid, like the solvers do.
SolveKey canonical_key(const SolveRequest& req);

/// Solves the canonical form of `req` and returns the immutable table by
/// shared_ptr — the entry point OptimalPolicy plugs into directly. No
/// caching; SolveCache calls this on a miss. `pool` is forwarded to
/// solve_fast (pass nullptr from inside pool tasks — run_dag is not
/// reentrant).
std::shared_ptr<const ValueTable> solve_shared(const SolveRequest& req,
                                               util::ThreadPool* pool = nullptr);

/// Lifetime counters. hits + misses == completed get_or_solve calls;
/// entries/evictions/resident_bytes describe the resident set.
struct SolveCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  /// Bytes of finished resident tables (in-flight solves count 0 until
  /// their size is known).
  std::size_t resident_bytes = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class SolveCache {
 public:
  struct Options {
    /// Stripe/shard count; rounded up to a power of two.
    std::size_t shards = 8;
    /// Total byte budget for resident tables across all shards (split
    /// evenly). Each shard always keeps its most recently finished table
    /// even when it alone exceeds the slice.
    std::size_t max_bytes = 64u << 20;  // 64 MiB
  };

  SolveCache();  // default Options
  explicit SolveCache(Options options);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Returns the table for canonical_key(req), solving it at most once per
  /// residency no matter how many threads ask concurrently. A solve that
  /// throws is not cached: the exception propagates to every waiter of that
  /// attempt and the key is cleared so a later call retries.
  ///
  /// Safe to call from many threads, including ThreadPool workers — but
  /// then pass pool == nullptr (see solve_shared).
  std::shared_ptr<const ValueTable> get_or_solve(const SolveRequest& req,
                                                 util::ThreadPool* pool = nullptr);

  /// Point-in-time totals (counters are exact; `entries` sums shard sizes
  /// without a global lock, so it is approximate under concurrent writes).
  SolveCacheStats stats() const;

  /// Drops every resident table (in-flight solves complete and are dropped
  /// on arrival). Counters are NOT reset — they are lifetime totals.
  void clear();

  /// Re-budgets the cache to `max_bytes` total (re-split evenly across
  /// shards) and immediately evicts LRU finished tables in every shard that
  /// no longer fits its slice. The keep-newest guarantee survives a shrink:
  /// each shard retains its most recently used finished table even when that
  /// table alone exceeds the new slice, so resizing to 0 degrades to
  /// one-table-per-shard rather than an always-cold cache. Growing never
  /// evicts. Thread-safe against concurrent get_or_solve/stats/clear; the
  /// service layer calls this for live per-tenant quota changes.
  void set_max_bytes(std::size_t max_bytes);

  /// Current total byte budget (as set by Options or set_max_bytes).
  std::size_t max_bytes() const noexcept {
    return max_bytes_.load(std::memory_order_relaxed);
  }

  std::size_t shard_count() const noexcept { return stripes_.stripes(); }

 private:
  using TablePtr = std::shared_ptr<const ValueTable>;
  using Future = std::shared_future<TablePtr>;

  struct KeyHash {
    std::size_t operator()(const SolveKey& key) const noexcept {
      return static_cast<std::size_t>(key.hash());
    }
  };

  struct Entry {
    Future future;
    std::uint64_t last_used = 0;  ///< shard-local LRU clock value
    std::uint64_t insert_id = 0;  ///< identity tag: which insertion this is
    std::size_t bytes = 0;        ///< 0 while the solve is in flight
  };

  struct Shard {
    std::unordered_map<SolveKey, Entry, KeyHash> map;
    std::uint64_t clock = 0;      ///< monotone per-shard use counter
    std::size_t bytes = 0;        ///< Σ entry.bytes of this map
  };

  /// Evicts LRU *finished* entries (in-flight ones weigh nothing, so
  /// removing them cannot relieve byte pressure) until the shard fits its
  /// slice or only `keep` remains. `keep` is the entry that must survive —
  /// the one whose bytes were just recorded.
  void evict_excess_locked(Shard& shard, const SolveKey& keep);

  // mutable: stats() is logically const but must lock shard stripes.
  mutable util::StripedMutex stripes_;
  std::vector<Shard> shards_;
  // Atomic because set_max_bytes rewrites the budget while other threads
  // read it inside evict_excess_locked under their own stripe lock (relaxed
  // is enough: eviction against a slightly stale budget is corrected by the
  // resize's own per-shard eviction pass).
  std::atomic<std::size_t> per_shard_budget_;
  std::atomic<std::size_t> max_bytes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace nowsched::solver
