#include "solver/nonadaptive_opt.h"

#include <algorithm>
#include <vector>

#include "core/guidelines.h"
#include "util/rng.h"

namespace nowsched::solver {

namespace {

Ticks evaluate(const std::vector<Ticks>& periods, Ticks lifespan, int p,
               const Params& params) {
  return nonadaptive_guaranteed_work(EpisodeSchedule{std::vector<Ticks>(periods)},
                                     lifespan, p, params);
}

}  // namespace

CommittedSearchResult optimize_committed(Ticks lifespan, int p, const Params& params,
                                         const CommittedSearchOptions& options) {
  const auto seed_sched = nonadaptive_guideline(lifespan, p, params);
  std::vector<Ticks> periods(seed_sched.periods().begin(), seed_sched.periods().end());

  CommittedSearchResult result;
  result.start_value = nonadaptive_guaranteed_work(seed_sched, lifespan, p, params);
  Ticks best = result.start_value;
  util::Rng rng(options.seed);

  Ticks delta = std::max<Ticks>(1, lifespan / std::max<Ticks>(8, 4 * static_cast<Ticks>(
                                                                      periods.size())));
  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved = false;

    // Transfer moves between sampled pairs.
    const std::size_t m = periods.size();
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    if (m * m <= options.pair_samples * 4) {
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          if (i != j) pairs.emplace_back(i, j);
        }
      }
    } else {
      for (std::size_t s = 0; s < options.pair_samples; ++s) {
        const auto i = static_cast<std::size_t>(rng.next_below(m));
        auto j = static_cast<std::size_t>(rng.next_below(m));
        if (i == j) j = (j + 1) % m;
        pairs.emplace_back(i, j);
      }
      // Always include neighbour transfers — the most useful direction.
      for (std::size_t i = 0; i + 1 < m; ++i) {
        pairs.emplace_back(i, i + 1);
        pairs.emplace_back(i + 1, i);
      }
    }
    for (const auto& [from, to] : pairs) {
      if (periods[from] <= delta) continue;
      periods[from] -= delta;
      periods[to] += delta;
      const Ticks v = evaluate(periods, lifespan, p, params);
      if (v > best) {
        best = v;
        improved = true;
        ++result.improving_moves;
      } else {
        periods[from] += delta;
        periods[to] -= delta;
      }
    }

    // Split moves: halve the largest few periods.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto largest = static_cast<std::size_t>(std::distance(
          periods.begin(), std::max_element(periods.begin(), periods.end())));
      if (periods[largest] < 2) break;
      const Ticks t = periods[largest];
      periods[largest] = t / 2;
      periods.insert(periods.begin() + static_cast<std::ptrdiff_t>(largest) + 1,
                     t - t / 2);
      const Ticks v = evaluate(periods, lifespan, p, params);
      if (v > best) {
        best = v;
        improved = true;
        ++result.improving_moves;
      } else {
        periods.erase(periods.begin() + static_cast<std::ptrdiff_t>(largest) + 1);
        periods[largest] = t;
        break;
      }
    }

    // Merge moves: combine the smallest adjacent pair.
    if (periods.size() >= 2) {
      std::size_t arg = 0;
      Ticks smallest_sum = periods[0] + periods[1];
      for (std::size_t i = 1; i + 1 < periods.size(); ++i) {
        if (periods[i] + periods[i + 1] < smallest_sum) {
          smallest_sum = periods[i] + periods[i + 1];
          arg = i;
        }
      }
      const Ticks a = periods[arg], b = periods[arg + 1];
      periods[arg] = a + b;
      periods.erase(periods.begin() + static_cast<std::ptrdiff_t>(arg) + 1);
      const Ticks v = evaluate(periods, lifespan, p, params);
      if (v > best) {
        best = v;
        improved = true;
        ++result.improving_moves;
      } else {
        periods[arg] = a;
        periods.insert(periods.begin() + static_cast<std::ptrdiff_t>(arg) + 1, b);
      }
    }

    if (!improved) {
      if (delta == 1) break;
      delta = std::max<Ticks>(1, delta / 2);
    }
  }

  result.schedule = EpisodeSchedule(std::move(periods));
  result.value = best;
  return result;
}

}  // namespace nowsched::solver
