// Umbrella header for the nowsched library.
//
// nowsched reproduces and extends:
//   A. L. Rosenberg, "Guidelines for Data-Parallel Cycle-Stealing in
//   Networks of Workstations, II: On Maximizing Guaranteed Output",
//   IPPS/SPDP 1999.
//
// Layers (see DESIGN.md §2):
//   nowsched           — model types, schedules, published guidelines
//   nowsched::solver   — exact minimax solvers for W(p)[L], policy evaluation
//   nowsched::adversary— owner/interrupt models
//   nowsched::sim      — discrete-event NOW simulator
//   nowsched::service  — resident multi-tenant scheduler service
//   nowsched::rpc      — nowsched-rpc v1 wire protocol (daemon + client)
//   nowsched::race     — statistical policy racing / best-arm identification
//   nowsched::util     — support (RNG, stats, tables, threads)
#pragma once

#include "core/baselines.h"
#include "core/bounds.h"
#include "core/closed_form.h"
#include "core/analysis.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "core/policy.h"
#include "core/schedule.h"
#include "core/transforms.h"
#include "core/types.h"

#include "solver/extract.h"
#include "solver/fast_solver.h"
#include "solver/solve_cache.h"
#include "solver/solve_key.h"
#include "solver/table_store.h"
#include "solver/nonadaptive_eval.h"
#include "solver/nonadaptive_opt.h"
#include "solver/policy_eval.h"
#include "solver/reference_solver.h"
#include "solver/value_table.h"

#include "adversary/adversary.h"
#include "adversary/heuristics.h"
#include "adversary/processes.h"
#include "adversary/stochastic.h"
#include "adversary/trace.h"

#include "sim/batch_runner.h"
#include "sim/checkpoint.h"
#include "sim/event.h"
#include "sim/farm.h"
#include "sim/metrics.h"
#include "sim/scenario_gen.h"
#include "sim/session.h"
#include "sim/taskbag.h"

#include "service/job.h"
#include "service/queue_policy.h"
#include "service/scheduler_service.h"
#include "service/service_stats.h"
#include "service/stats_format.h"

#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/protocol.h"
#include "rpc/server.h"

#include "race/bounds.h"
#include "race/policy_race.h"
#include "race/race.h"
#include "race/regret_hunt.h"

#include "util/csv.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/mmap_file.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/striped_lock.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
