#include "service/stats_format.h"

#include <cstdint>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/parse.h"

namespace nowsched::service {

namespace {

std::string format_double(double x) {
  // max_digits10 == 17 round-trips IEEE doubles exactly through text.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

void write_latency(std::ostringstream& os, const LatencySummary& latency) {
  os << "latency_count=" << latency.count << "\n";
  os << "latency_p50_ms=" << format_double(latency.p50_ms) << "\n";
  os << "latency_p90_ms=" << format_double(latency.p90_ms) << "\n";
  os << "latency_p99_ms=" << format_double(latency.p99_ms) << "\n";
  os << "latency_max_ms=" << format_double(latency.max_ms) << "\n";
}

// Throwing wrappers around the strict util/parse.h helpers: the line is the
// diagnostic (it names both the key and the offending value).
std::uint64_t parse_u64(const std::string& value, const std::string& line) {
  const auto x = util::parse_uint64(value);
  if (!x) {
    throw std::invalid_argument("nowsched-stats: malformed integer in '" + line + "'");
  }
  return *x;
}

double parse_dbl(const std::string& value, const std::string& line) {
  const auto x = util::parse_double(value);
  if (!x) {
    throw std::invalid_argument("nowsched-stats: malformed number in '" + line + "'");
  }
  return *x;
}

// One key=value consumer per section. `seen` enforces exactly-once keys so a
// truncated-then-concatenated payload cannot silently half-overwrite fields.
class KeySet {
 public:
  void mark(const std::string& key) {
    if (!seen_.insert(key).second) {
      throw std::invalid_argument("nowsched-stats: duplicate key '" + key + "'");
    }
  }
  void require(std::initializer_list<const char*> keys, const char* section) const {
    for (const char* key : keys) {
      if (seen_.count(key) == 0) {
        throw std::invalid_argument(std::string("nowsched-stats: missing key '") +
                                    key + "' in " + section + " section");
      }
    }
  }

 private:
  std::set<std::string> seen_;
};

bool consume_latency(LatencySummary& latency, const std::string& key,
                     const std::string& value, const std::string& line) {
  if (key == "latency_count") {
    latency.count = parse_u64(value, line);
  } else if (key == "latency_p50_ms") {
    latency.p50_ms = parse_dbl(value, line);
  } else if (key == "latency_p90_ms") {
    latency.p90_ms = parse_dbl(value, line);
  } else if (key == "latency_p99_ms") {
    latency.p99_ms = parse_dbl(value, line);
  } else if (key == "latency_max_ms") {
    latency.max_ms = parse_dbl(value, line);
  } else {
    return false;
  }
  return true;
}

constexpr std::initializer_list<const char*> kLatencyKeys = {
    "latency_count", "latency_p50_ms", "latency_p90_ms", "latency_p99_ms",
    "latency_max_ms"};

}  // namespace

std::string to_stats_string(const ServiceStats& stats) {
  std::ostringstream os;
  os << "nowsched-stats v1\n";
  os << "queue_policy=" << stats.queue_policy << "\n";
  os << "workers=" << stats.workers << "\n";
  os << "queued_jobs=" << stats.queued_jobs << "\n";
  os << "inflight_jobs=" << stats.inflight_jobs << "\n";
  os << "submitted_jobs=" << stats.submitted_jobs << "\n";
  os << "accepted_jobs=" << stats.accepted_jobs << "\n";
  os << "rejected_jobs=" << stats.rejected_jobs << "\n";
  os << "completed_jobs=" << stats.completed_jobs << "\n";
  os << "failed_jobs=" << stats.failed_jobs << "\n";
  os << "cancelled_jobs=" << stats.cancelled_jobs << "\n";
  os << "completed_scenarios=" << stats.completed_scenarios << "\n";
  write_latency(os, stats.latency);
  os << "tenants=" << stats.tenants.size() << "\n";
  for (const TenantStats& t : stats.tenants) {
    os << "tenant=" << t.tenant << "\n";
    os << "quota_bytes=" << t.quota_bytes << "\n";
    os << "submitted_jobs=" << t.submitted_jobs << "\n";
    os << "accepted_jobs=" << t.accepted_jobs << "\n";
    os << "rejected_tenant_full=" << t.rejected_tenant_full << "\n";
    os << "rejected_global_full=" << t.rejected_global_full << "\n";
    os << "rejected_throttled=" << t.rejected_throttled << "\n";
    os << "rejected_invalid=" << t.rejected_invalid << "\n";
    os << "rejected_shutdown=" << t.rejected_shutdown << "\n";
    os << "completed_jobs=" << t.completed_jobs << "\n";
    os << "failed_jobs=" << t.failed_jobs << "\n";
    os << "cancelled_jobs=" << t.cancelled_jobs << "\n";
    os << "submitted_scenarios=" << t.submitted_scenarios << "\n";
    os << "completed_scenarios=" << t.completed_scenarios << "\n";
    os << "queued_jobs=" << t.queued_jobs << "\n";
    os << "inflight_jobs=" << t.inflight_jobs << "\n";
    os << "pending_scenarios=" << t.pending_scenarios << "\n";
    os << "cache_hits=" << t.cache.hits << "\n";
    os << "cache_misses=" << t.cache.misses << "\n";
    os << "cache_store_hits=" << t.cache.store_hits << "\n";
    os << "cache_spills=" << t.cache.spills << "\n";
    os << "cache_evictions=" << t.cache.evictions << "\n";
    os << "cache_entries=" << t.cache.entries << "\n";
    os << "cache_resident_bytes=" << t.cache.resident_bytes << "\n";
    write_latency(os, t.latency);
  }
  return os.str();
}

ServiceStats stats_from_string(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "nowsched-stats v1") {
    throw std::invalid_argument("nowsched-stats: missing 'nowsched-stats v1' header");
  }

  ServiceStats out;
  // The parser is a two-state machine: the global section runs until the
  // `tenants=N` line, after which exactly N `tenant=` blocks must follow.
  bool in_tenants = false;
  std::uint64_t declared_tenants = 0;
  TenantStats current;
  KeySet global_seen;
  KeySet tenant_seen;

  const auto finish_tenant = [&] {
    tenant_seen.require(
        {"quota_bytes", "submitted_jobs", "accepted_jobs", "rejected_tenant_full",
         "rejected_global_full", "rejected_throttled", "rejected_invalid",
         "rejected_shutdown", "completed_jobs", "failed_jobs", "cancelled_jobs",
         "submitted_scenarios", "completed_scenarios", "queued_jobs",
         "inflight_jobs", "pending_scenarios", "cache_hits", "cache_misses",
         "cache_store_hits", "cache_spills", "cache_evictions", "cache_entries",
         "cache_resident_bytes"},
        "tenant");
    tenant_seen.require(kLatencyKeys, "tenant");
    out.tenants.push_back(std::move(current));
    current = TenantStats{};
    tenant_seen = KeySet{};
  };

  while (std::getline(is, line)) {
    if (line.empty()) {
      throw std::invalid_argument("nowsched-stats: unexpected blank line");
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("nowsched-stats: expected key=value, got '" +
                                  line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);

    if (key == "tenant") {
      if (!in_tenants) {
        throw std::invalid_argument(
            "nowsched-stats: 'tenant' before the tenants=N count line");
      }
      if (!current.tenant.empty()) finish_tenant();
      if (value.empty()) {
        throw std::invalid_argument("nowsched-stats: empty tenant id");
      }
      current.tenant = value;
      continue;
    }

    if (!in_tenants) {
      global_seen.mark(key);
      if (key == "queue_policy") {
        out.queue_policy = value;
      } else if (key == "workers") {
        out.workers = static_cast<std::size_t>(parse_u64(value, line));
      } else if (key == "queued_jobs") {
        out.queued_jobs = static_cast<std::size_t>(parse_u64(value, line));
      } else if (key == "inflight_jobs") {
        out.inflight_jobs = static_cast<std::size_t>(parse_u64(value, line));
      } else if (key == "submitted_jobs") {
        out.submitted_jobs = parse_u64(value, line);
      } else if (key == "accepted_jobs") {
        out.accepted_jobs = parse_u64(value, line);
      } else if (key == "rejected_jobs") {
        out.rejected_jobs = parse_u64(value, line);
      } else if (key == "completed_jobs") {
        out.completed_jobs = parse_u64(value, line);
      } else if (key == "failed_jobs") {
        out.failed_jobs = parse_u64(value, line);
      } else if (key == "cancelled_jobs") {
        out.cancelled_jobs = parse_u64(value, line);
      } else if (key == "completed_scenarios") {
        out.completed_scenarios = parse_u64(value, line);
      } else if (consume_latency(out.latency, key, value, line)) {
        // handled
      } else if (key == "tenants") {
        global_seen.require(
            {"queue_policy", "workers", "queued_jobs", "inflight_jobs",
             "submitted_jobs", "accepted_jobs", "rejected_jobs", "completed_jobs",
             "failed_jobs", "cancelled_jobs", "completed_scenarios"},
            "global");
        global_seen.require(kLatencyKeys, "global");
        declared_tenants = parse_u64(value, line);
        in_tenants = true;
      } else {
        throw std::invalid_argument("nowsched-stats: unknown key '" + key + "'");
      }
      continue;
    }

    // Tenant section: every key belongs to the block opened by `tenant=`.
    if (current.tenant.empty()) {
      throw std::invalid_argument(
          "nowsched-stats: tenant field '" + key + "' before any tenant= line");
    }
    tenant_seen.mark(key);
    if (key == "quota_bytes") {
      current.quota_bytes = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "submitted_jobs") {
      current.submitted_jobs = parse_u64(value, line);
    } else if (key == "accepted_jobs") {
      current.accepted_jobs = parse_u64(value, line);
    } else if (key == "rejected_tenant_full") {
      current.rejected_tenant_full = parse_u64(value, line);
    } else if (key == "rejected_global_full") {
      current.rejected_global_full = parse_u64(value, line);
    } else if (key == "rejected_throttled") {
      current.rejected_throttled = parse_u64(value, line);
    } else if (key == "rejected_invalid") {
      current.rejected_invalid = parse_u64(value, line);
    } else if (key == "rejected_shutdown") {
      current.rejected_shutdown = parse_u64(value, line);
    } else if (key == "completed_jobs") {
      current.completed_jobs = parse_u64(value, line);
    } else if (key == "failed_jobs") {
      current.failed_jobs = parse_u64(value, line);
    } else if (key == "cancelled_jobs") {
      current.cancelled_jobs = parse_u64(value, line);
    } else if (key == "submitted_scenarios") {
      current.submitted_scenarios = parse_u64(value, line);
    } else if (key == "completed_scenarios") {
      current.completed_scenarios = parse_u64(value, line);
    } else if (key == "queued_jobs") {
      current.queued_jobs = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "inflight_jobs") {
      current.inflight_jobs = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "pending_scenarios") {
      current.pending_scenarios = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "cache_hits") {
      current.cache.hits = parse_u64(value, line);
    } else if (key == "cache_misses") {
      current.cache.misses = parse_u64(value, line);
    } else if (key == "cache_store_hits") {
      current.cache.store_hits = parse_u64(value, line);
    } else if (key == "cache_spills") {
      current.cache.spills = parse_u64(value, line);
    } else if (key == "cache_evictions") {
      current.cache.evictions = parse_u64(value, line);
    } else if (key == "cache_entries") {
      current.cache.entries = static_cast<std::size_t>(parse_u64(value, line));
    } else if (key == "cache_resident_bytes") {
      current.cache.resident_bytes = static_cast<std::size_t>(parse_u64(value, line));
    } else if (consume_latency(current.latency, key, value, line)) {
      // handled
    } else {
      throw std::invalid_argument("nowsched-stats: unknown key '" + key + "'");
    }
  }

  if (!in_tenants) {
    throw std::invalid_argument("nowsched-stats: missing tenants=N count line");
  }
  if (!current.tenant.empty()) finish_tenant();
  if (out.tenants.size() != declared_tenants) {
    throw std::invalid_argument(
        "nowsched-stats: tenant count mismatch (declared " +
        std::to_string(declared_tenants) + ", found " +
        std::to_string(out.tenants.size()) + ")");
  }
  return out;
}

}  // namespace nowsched::service
