// Snapshot statistics for service::SchedulerService, plus the pure helper
// functions the snapshot is computed with.
//
// Deflake discipline: everything here that a test asserts on is either a
// monotone counter, a conservation-law quantity (submitted = accepted +
// rejected; accepted = completed + failed + cancelled + queued + inflight),
// or a PURE function of explicit samples (summarize_latency,
// jains_fairness) — never a wall-clock reading. Latencies are recorded and
// reported (they are what a service operator tunes against) but no test in
// the battery asserts a timing value; the percentile math itself is
// unit-tested on fixed sample vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "solver/solve_cache.h"

namespace nowsched::service {

/// Fixed-capacity ring of the most recent latency samples: per-tenant
/// memory stays bounded no matter how long the service lives, and the
/// percentiles reflect recent behaviour instead of averaging over the whole
/// process lifetime. Not thread-safe; the service guards it with its lock.
class LatencyRing {
 public:
  explicit LatencyRing(std::size_t capacity = 512);

  void add(double ms);

  /// Lifetime samples recorded (>= samples().size(); the ring keeps the
  /// last `capacity` of them).
  std::uint64_t recorded() const noexcept { return recorded_; }

  /// The retained samples, in no particular order (quantiles sort anyway).
  std::vector<double> samples() const;

 private:
  std::vector<double> ring_;
  std::size_t capacity_;
  std::uint64_t recorded_ = 0;
};

struct LatencySummary {
  std::uint64_t count = 0;  ///< samples the quantiles were computed from
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Pure: percentile summary of `samples_ms` (linear-interpolation quantiles
/// via util::Summary). Empty input yields all zeros.
LatencySummary summarize_latency(const std::vector<double>& samples_ms);

/// Pure: Jain's fairness index J(x) = (Σx)² / (n · Σx²) over per-tenant
/// service allocations. 1.0 = perfectly even, 1/n = one tenant got
/// everything. Empty or all-zero input is defined as 1.0 (nothing was
/// allocated unevenly). E15 reports this for FIFO vs fair-share queueing
/// under skewed tenant load.
double jains_fairness(const std::vector<double>& allocations);

struct TenantStats {
  std::string tenant;
  std::size_t quota_bytes = 0;  ///< the tenant cache's current byte quota

  // Admission counters. submitted == accepted + the five rejection kinds.
  std::uint64_t submitted_jobs = 0;
  std::uint64_t accepted_jobs = 0;
  std::uint64_t rejected_tenant_full = 0;
  std::uint64_t rejected_global_full = 0;
  std::uint64_t rejected_throttled = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;

  // Outcome counters. accepted == completed + failed + cancelled
  //                             + queued_jobs + inflight_jobs.
  std::uint64_t completed_jobs = 0;
  std::uint64_t failed_jobs = 0;
  std::uint64_t cancelled_jobs = 0;

  std::uint64_t submitted_scenarios = 0;  ///< scenarios in ACCEPTED jobs
  std::uint64_t completed_scenarios = 0;

  // Point-in-time queue state.
  std::size_t queued_jobs = 0;
  std::size_t inflight_jobs = 0;
  std::size_t pending_scenarios = 0;  ///< scenarios queued or in flight

  solver::SolveCacheStats cache;  ///< the tenant's own quota cache
  LatencySummary latency;

  std::uint64_t rejected_total() const noexcept {
    return rejected_tenant_full + rejected_global_full + rejected_throttled +
           rejected_invalid + rejected_shutdown;
  }
};

struct ServiceStats {
  std::string queue_policy;
  std::size_t workers = 0;

  std::size_t queued_jobs = 0;
  std::size_t inflight_jobs = 0;

  // Sums over tenants (same conservation laws per tenant and globally).
  std::uint64_t submitted_jobs = 0;
  std::uint64_t accepted_jobs = 0;
  std::uint64_t rejected_jobs = 0;
  std::uint64_t completed_jobs = 0;
  std::uint64_t failed_jobs = 0;
  std::uint64_t cancelled_jobs = 0;
  std::uint64_t completed_scenarios = 0;

  /// Pooled over every tenant's retained samples.
  LatencySummary latency;

  /// Sorted by tenant id.
  std::vector<TenantStats> tenants;

  /// Lookup by tenant id; nullptr when the tenant has never been seen.
  const TenantStats* tenant(const std::string& id) const noexcept;
};

}  // namespace nowsched::service
