// Versioned text serialization for service::ServiceStats — the
// `nowsched-stats v1` format shared by the Stats RPC (rpc::Server encodes a
// StatsReply payload with it) and the examples/sched_service printer, so
// the two surfaces can never drift apart.
//
// Same discipline as the `nowsched-scenario v1` replay format: a version
// header line, key=value records, %.17g doubles (IEEE round-trip exact),
// strict whole-string parsing via util/parse.h, and hard errors on unknown
// keys or missing fields. stats_from_string(to_stats_string(s)) reproduces
// every field bit-identically.
#pragma once

#include <string>

#include "service/service_stats.h"

namespace nowsched::service {

/// Canonical `nowsched-stats v1` text for a stats snapshot. Deterministic:
/// tenants appear in the snapshot's order (SchedulerService::stats() sorts
/// them by id), doubles print with %.17g.
std::string to_stats_string(const ServiceStats& stats);

/// Strict inverse of to_stats_string. Throws std::invalid_argument on a
/// missing/garbled header, unknown key, malformed number, duplicate or
/// missing field, or a tenant-count mismatch.
ServiceStats stats_from_string(const std::string& text);

}  // namespace nowsched::service
