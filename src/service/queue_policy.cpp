#include "service/queue_policy.h"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

namespace nowsched::service {

namespace {

class FifoQueue final : public QueuePolicy {
 public:
  const char* name() const noexcept override { return "fifo"; }

  void push(QueuedJob job) override { jobs_.push_back(std::move(job)); }

  QueuedJob pop() override {
    if (jobs_.empty()) throw std::logic_error("FifoQueue::pop: queue is empty");
    QueuedJob job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
  }

  std::size_t size() const noexcept override { return jobs_.size(); }

 private:
  std::deque<QueuedJob> jobs_;
};

// Classic deficit round robin (Shreedhar & Varghese) over tenants, one job
// per pop. A tenant activates at the BACK of the rotation when its queue
// goes non-empty, banks `quantum_` deficit per visit, and serves its head
// job once the deficit covers the job's cost; its deficit resets to zero
// when its queue drains (an idle tenant must not hoard credit). The serving
// tenant stays at the front between pops, so "serve while the deficit
// suffices" holds across pop() calls exactly as in the packet formulation.
class DeficitRoundRobinQueue final : public QueuePolicy {
 public:
  explicit DeficitRoundRobinQueue(std::size_t quantum)
      : quantum_(std::max<std::size_t>(1, quantum)) {}

  const char* name() const noexcept override { return "drr"; }

  void push(QueuedJob job) override {
    auto [it, inserted] = tenants_.try_emplace(job.tenant);
    if (it->second.jobs.empty()) rotation_.push_back(it->first);
    it->second.jobs.push_back(std::move(job));
    ++size_;
  }

  QueuedJob pop() override {
    if (size_ == 0) {
      throw std::logic_error("DeficitRoundRobinQueue::pop: queue is empty");
    }
    // Terminates: every full rotation adds quantum_ >= 1 to each active
    // tenant's deficit, and some head job's cost is finite.
    for (;;) {
      TenantQueue& tq = tenants_.find(rotation_.front())->second;
      if (tq.deficit >= tq.jobs.front().cost) {
        QueuedJob job = std::move(tq.jobs.front());
        tq.jobs.pop_front();
        tq.deficit -= job.cost;
        --size_;
        if (tq.jobs.empty()) {
          tq.deficit = 0;
          rotation_.pop_front();
        }
        return job;
      }
      tq.deficit += quantum_;
      std::string visited = std::move(rotation_.front());
      rotation_.pop_front();
      rotation_.push_back(std::move(visited));
    }
  }

  std::size_t size() const noexcept override { return size_; }

 private:
  struct TenantQueue {
    std::deque<QueuedJob> jobs;
    std::size_t deficit = 0;
  };

  std::size_t quantum_;
  // std::map keeps iteration deterministic for debugging; the scheduling
  // order itself comes from rotation_, never from map order.
  std::map<std::string, TenantQueue> tenants_;
  std::deque<std::string> rotation_;  ///< active tenants, visit order
  std::size_t size_ = 0;
};

}  // namespace

void QueuePolicy::drain(const std::function<void(QueuedJob&&)>& fn) {
  while (!empty()) fn(pop());
}

const char* to_string(QueueKind kind) {
  switch (kind) {
    case QueueKind::kFifo: return "fifo";
    case QueueKind::kDeficitRoundRobin: return "drr";
  }
  return "?";
}

QueueKind queue_kind_from_string(const std::string& name) {
  if (name == "fifo") return QueueKind::kFifo;
  if (name == "drr" || name == "fair-share") return QueueKind::kDeficitRoundRobin;
  throw std::invalid_argument("unknown queue kind \"" + name +
                              "\" (expected fifo | drr | fair-share)");
}

std::unique_ptr<QueuePolicy> make_queue_policy(QueueKind kind, std::size_t quantum) {
  switch (kind) {
    case QueueKind::kFifo: return std::make_unique<FifoQueue>();
    case QueueKind::kDeficitRoundRobin:
      return std::make_unique<DeficitRoundRobinQueue>(quantum);
  }
  throw std::logic_error("make_queue_policy: unknown queue kind");
}

}  // namespace nowsched::service
