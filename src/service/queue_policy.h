// Pluggable queueing disciplines for service::SchedulerService.
//
// The service owns admission and execution; WHICH accepted job runs next is
// delegated to a QueuePolicy. Two disciplines ship (mirroring the
// sched_fifo / sched_fffs class split of the pnnl/mcl scheduler daemon):
//
//   * kFifo — global admission order, tenant-blind. Simple and
//     latency-fair per job, but a tenant that floods the queue starves the
//     others in proportion to its submission rate.
//   * kDeficitRoundRobin — fair share ACROSS tenants. Classic DRR: active
//     tenants sit in a rotation; each visit banks `quantum` cost units of
//     deficit, and a tenant's head job runs once its deficit covers the
//     job's cost (cost = scenario count). Within a tenant, jobs stay FIFO.
//     Equal long-run service rates for backlogged tenants regardless of how
//     unequal their offered loads are — the property E15 measures as Jain's
//     fairness index.
//
// Policies are NOT thread-safe: the service calls them under its own mutex.
// They are deliberately pure data structures (push/pop/size, no clocks, no
// callbacks), which is what makes the per-policy scheduling-order tests
// deterministic single-threaded affairs.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "service/job.h"

namespace nowsched::service {

enum class QueueKind {
  kFifo,
  kDeficitRoundRobin,
};

const char* to_string(QueueKind kind);

/// Parses a queue-class flag value: "fifo", "drr" (alias "fair-share").
/// Throws std::invalid_argument on anything else.
QueueKind queue_kind_from_string(const std::string& name);

class QueuePolicy {
 public:
  virtual ~QueuePolicy() = default;

  virtual const char* name() const noexcept = 0;

  virtual void push(QueuedJob job) = 0;

  /// Removes and returns the next job to run. Throws std::logic_error when
  /// empty — popping an empty queue is a caller bug (the service checks
  /// size() under the same lock), not a wait condition.
  virtual QueuedJob pop() = 0;

  virtual std::size_t size() const noexcept = 0;
  bool empty() const noexcept { return size() == 0; }

  /// Hands every queued job to `fn` in pop order and leaves the queue
  /// empty. The shutdown/cancel path uses this to fail queued promises.
  void drain(const std::function<void(QueuedJob&&)>& fn);
};

/// `quantum` is the DRR per-visit deficit grant in cost units (clamped
/// below at 1); kFifo ignores it.
std::unique_ptr<QueuePolicy> make_queue_policy(QueueKind kind,
                                               std::size_t quantum = 64);

}  // namespace nowsched::service
