// SchedulerService — the resident, thread-safe, multi-tenant service core
// over sim::BatchRunner: the "millions of users, one warm solver" layer of
// the ROADMAP (DESIGN.md §10).
//
// Dataflow:  submit(tenant, specs)
//              └─ admission  — validate specs; bounded per-tenant and
//                 global queue depths and a per-tenant pending-scenario
//                 budget; overflow is REJECTED WITH A REASON (a status the
//                 client retries on — cooperative backpressure, never an
//                 unbounded internal queue)
//              └─ queue policy — a pluggable QueuePolicy (FIFO or
//                 deficit-round-robin fair share across tenants) picks
//                 which accepted job runs next
//              └─ execution  — a worker thread runs the job's scenario
//                 batch through BatchRunner with the TENANT'S OWN
//                 byte-quota SolveCache and fulfills the job's future
//              └─ stats      — per-tenant counters, queue depths, cache
//                 hit rates, and p50/p90/p99 job latency via stats()
//
// Quota layering: every tenant gets a private solver::SolveCache whose
// max_bytes is the tenant's quota; inside each cache, the existing
// per-shard byte slices and keep-newest eviction apply unchanged. Isolation
// is therefore structural — a cache-hostile tenant churns only its own
// budget and CANNOT evict another tenant's tables (pinned by the quota-
// isolation tests). set_tenant_quota resizes a live cache, evicting down
// immediately.
//
// Determinism: scheduling decides only WHEN a job runs, never what it
// computes. Each scenario's result is a pure function of its spec
// (BatchRunner's contract: hash-derived private RNG streams, no global
// state), and a cache only changes who solves a table, never its contents —
// so per-scenario metrics are bit-identical across queue policies, worker
// counts, tenant splits, and quota settings, and identical to a direct
// BatchRunner::run. The service-vs-batch conformance differential fuzzes
// exactly this claim.
//
// Threading contract: every public method is safe to call from any thread.
// Workers execute jobs outside the service lock; promise fulfillment
// happens after the completion counters are published, so a future
// returned by submit() is (or is about to become) ready whenever stats()
// says the job completed. With workers == 0 the service is in MANUAL mode:
// no threads are spawned and run_next() pumps one job at a time on the
// calling thread — the deterministic single-thread harness the
// scheduling-order tests drive.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "service/job.h"
#include "service/queue_policy.h"
#include "service/service_stats.h"
#include "sim/batch_runner.h"
#include "solver/solve_cache.h"

namespace nowsched::service {

enum class SubmitStatus {
  kAccepted,
  kQueueFullTenant,   ///< tenant queue-depth limit hit — retry later
  kQueueFullGlobal,   ///< global queue-depth limit hit — retry later
  kThrottled,         ///< tenant pending-scenario budget exceeded — retry later
  kInvalidScenario,   ///< a spec failed validation; reason names the index
  kShuttingDown,      ///< service no longer accepts work
};

const char* to_string(SubmitStatus status);

/// True for the overflow statuses a client is invited to retry on
/// (kQueueFullTenant, kQueueFullGlobal, kThrottled) — the cooperative
/// backpressure protocol. Invalid scenarios and shutdown are final.
bool is_backpressure(SubmitStatus status) noexcept;

/// What submit() hands back. On acceptance `result` is a valid future the
/// job's JobResult (or execution exception) arrives on; on rejection
/// `reason` says why and `result` is invalid.
struct Submission {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::string reason;
  JobId job_id = 0;  ///< 0 when rejected
  std::future<JobResult> result;

  bool accepted() const noexcept { return status == SubmitStatus::kAccepted; }
};

struct ServiceOptions {
  /// Worker threads executing jobs. 0 = manual mode: run_next() drives
  /// (the deterministic test harness); >= 1 spawns resident workers.
  std::size_t workers = 2;

  QueueKind queue = QueueKind::kFifo;
  /// DRR per-visit deficit grant in scenarios (ignored by FIFO).
  std::size_t drr_quantum = 64;

  // Admission bounds. Depths are in JOBS; the throttle budget is in
  // SCENARIOS (so one tenant cannot monopolize compute with few huge jobs
  // that the job-depth limits would wave through).
  std::size_t max_queued_jobs_per_tenant = 64;
  std::size_t max_queued_jobs_total = 256;
  std::size_t max_pending_scenarios_per_tenant = 1u << 16;

  /// SolveCache byte quota for tenants that never got an explicit
  /// set_tenant_quota call.
  std::size_t default_tenant_quota_bytes = 16u << 20;  // 16 MiB
  /// Shards per tenant cache (tenants are already the coarse sharding, so
  /// fewer stripes than a process-global cache would use).
  std::size_t tenant_cache_shards = 4;

  /// Per-tenant latency ring capacity (most recent samples kept).
  std::size_t latency_window = 512;

  /// Optional persistent table-store directory mounted beneath EVERY
  /// tenant's cache (solver::MappedTableStore; see solver/table_store.h).
  /// Empty = no persistent tier, exactly the old behavior. One store serves
  /// all tenants: tables are pure functions of their canonical key, so
  /// sharing leaks no tenant data — only solves. Private byte-quota caches
  /// (and their isolation guarantees) sit above it unchanged.
  std::string shared_store_dir;
  /// Mount the shared store read-only — the warm-start deployment shape: a
  /// pre-baked store (examples/cache_bake) served to many service
  /// processes, none of which may mutate it. Read-write (the default) lets
  /// tenants' fresh solves spill for the next process to reuse.
  bool shared_store_readonly = false;
};

class SchedulerService {
 public:
  explicit SchedulerService(ServiceOptions options = {});

  /// Cancels queued jobs, lets in-flight jobs finish, joins workers —
  /// shutdown(StopMode::kCancelQueued). Call shutdown(StopMode::kDrain)
  /// first when queued work must complete.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Admits one job: `tenant`'s batch of scenarios. Never blocks on queue
  /// pressure — overflow returns a backpressure status instead (see
  /// SubmitStatus). Throws std::invalid_argument only on an empty tenant
  /// id (a caller bug, not load).
  Submission submit(const std::string& tenant,
                    std::vector<sim::ScenarioSpec> specs);

  /// Sets (or creates the tenant with) the tenant's cache byte quota.
  /// Resizing a live cache evicts down immediately, keep-newest preserved
  /// per shard (SolveCache::set_max_bytes).
  void set_tenant_quota(const std::string& tenant, std::size_t bytes);

  /// Manual mode only (workers == 0): pops the next job per the queue
  /// policy and runs it on the calling thread. Returns false when the
  /// queue is empty. Throws std::logic_error when the service owns worker
  /// threads — mixing foreign threads into a running worker fleet is a
  /// bug, not a feature.
  bool run_next();

  /// Blocks until the queue is empty and nothing is in flight (manual
  /// mode: runs the queue dry on the calling thread instead). Does NOT
  /// stop accepting — a concurrent submitter can keep the service busy.
  void drain();

  enum class StopMode {
    kDrain,         ///< run every queued job, then stop
    kCancelQueued,  ///< fail queued jobs' futures, finish in-flight, stop
  };

  /// Stops accepting (submits return kShuttingDown), resolves queued work
  /// per `mode`, waits for in-flight jobs, and joins workers. Idempotent;
  /// concurrent calls serialize and the first mode wins the queued jobs.
  void shutdown(StopMode mode = StopMode::kDrain);

  /// Point-in-time snapshot: per-tenant counters/queue depths/cache
  /// stats/latency percentiles plus global sums. Safe under full load.
  ServiceStats stats() const;

  const ServiceOptions& options() const noexcept { return options_; }

  /// The shared persistent tier all tenant caches mount (nullptr when
  /// ServiceOptions::shared_store_dir is empty).
  const std::shared_ptr<solver::TableStore>& shared_store() const noexcept {
    return shared_store_;
  }

 private:
  struct Tenant {
    Tenant(std::size_t quota, std::size_t shards, std::size_t latency_window,
           std::shared_ptr<solver::TableStore> store)
        : cache(solver::SolveCache::Options{shards, quota, std::move(store)}),
          latency(latency_window),
          quota_bytes(quota) {}

    solver::SolveCache cache;
    LatencyRing latency;
    std::size_t quota_bytes;

    std::uint64_t submitted_jobs = 0;
    std::uint64_t accepted_jobs = 0;
    std::uint64_t rejected_tenant_full = 0;
    std::uint64_t rejected_global_full = 0;
    std::uint64_t rejected_throttled = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t completed_jobs = 0;
    std::uint64_t failed_jobs = 0;
    std::uint64_t cancelled_jobs = 0;
    std::uint64_t submitted_scenarios = 0;
    std::uint64_t completed_scenarios = 0;
    std::size_t queued_jobs = 0;
    std::size_t inflight_jobs = 0;
    std::size_t pending_scenarios = 0;
  };

  void worker_loop();
  /// Runs `job` on the calling thread (no service lock held), updates the
  /// completion bookkeeping under the lock, then fulfills the promise.
  void execute(QueuedJob job, Tenant& tenant);
  /// Lock held: find-or-create the tenant record.
  Tenant& tenant_locked(const std::string& id);

  ServiceOptions options_;
  /// Built once in the constructor, then only read (TableStore does its own
  /// locking) — safe to hand to tenant caches without mu_.
  std::shared_ptr<solver::TableStore> shared_store_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for jobs/stop here
  std::condition_variable idle_cv_;  ///< drain/shutdown wait for quiescence

  std::unique_ptr<QueuePolicy> queue_;  // guarded by mu_
  // unordered_map: node stability lets execute() hold a Tenant& with mu_
  // released (the tenant's cache does its own locking).
  std::unordered_map<std::string, Tenant> tenants_;  // guarded by mu_

  std::size_t queued_total_ = 0;    // guarded by mu_
  std::size_t inflight_total_ = 0;  // guarded by mu_
  std::uint64_t next_seq_ = 0;      // guarded by mu_
  JobId next_job_id_ = 1;           // guarded by mu_
  std::uint64_t completions_ = 0;   // guarded by mu_
  bool accepting_ = true;           // guarded by mu_
  bool stop_workers_ = false;       // guarded by mu_

  std::mutex lifecycle_mu_;  ///< serializes shutdown(); taken before mu_
  bool joined_ = false;      // guarded by lifecycle_mu_

  std::vector<std::thread> workers_;
};

}  // namespace nowsched::service
