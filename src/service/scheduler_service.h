// SchedulerService — the resident, thread-safe, multi-tenant service core
// over sim::BatchRunner: the "millions of users, one warm solver" layer of
// the ROADMAP (DESIGN.md §10).
//
// Dataflow:  submit(tenant, specs)
//              └─ admission  — validate specs; bounded per-tenant and
//                 global queue depths and a per-tenant pending-scenario
//                 budget; overflow is REJECTED WITH A REASON (a status the
//                 client retries on — cooperative backpressure, never an
//                 unbounded internal queue)
//              └─ queue policy — a pluggable QueuePolicy (FIFO or
//                 deficit-round-robin fair share across tenants) picks
//                 which accepted job runs next
//              └─ execution  — a worker thread runs the job's scenario
//                 batch through BatchRunner with the TENANT'S OWN
//                 byte-quota SolveCache and fulfills the job's future
//              └─ stats      — per-tenant counters, queue depths, cache
//                 hit rates, and p50/p90/p99 job latency via stats()
//
// Quota layering: every tenant gets a private solver::SolveCache whose
// max_bytes is the tenant's quota; inside each cache, the existing
// per-shard byte slices and keep-newest eviction apply unchanged. Isolation
// is therefore structural — a cache-hostile tenant churns only its own
// budget and CANNOT evict another tenant's tables (pinned by the quota-
// isolation tests). set_tenant_quota resizes a live cache, evicting down
// immediately.
//
// Determinism: scheduling decides only WHEN a job runs, never what it
// computes. Each scenario's result is a pure function of its spec
// (BatchRunner's contract: hash-derived private RNG streams, no global
// state), and a cache only changes who solves a table, never its contents —
// so per-scenario metrics are bit-identical across queue policies, worker
// counts, tenant splits, and quota settings, and identical to a direct
// BatchRunner::run. The service-vs-batch conformance differential fuzzes
// exactly this claim.
//
// Threading contract: every public method is safe to call from any thread.
// Workers execute jobs outside the service lock; promise fulfillment
// happens after the completion counters are published, so a future
// returned by submit() is (or is about to become) ready whenever stats()
// says the job completed. With workers == 0 the service is in MANUAL mode:
// no threads are spawned and run_next() pumps one job at a time on the
// calling thread — the deterministic single-thread harness the
// scheduling-order tests drive.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "service/job.h"
#include "service/queue_policy.h"
#include "service/service_stats.h"
#include "sim/batch_runner.h"
#include "solver/solve_cache.h"

namespace nowsched::service {

/// Admission verdicts. The numeric values are FROZEN WIRE CODES of
/// nowsched-rpc v1 (they ride in every SubmitReply frame) — never renumber
/// or reuse them; new statuses append.
enum class SubmitStatus : int {
  kAccepted = 0,
  kQueueFullTenant = 1,  ///< tenant queue-depth limit hit — retry later
  kQueueFullGlobal = 2,  ///< global queue-depth limit hit — retry later
  kThrottled = 3,        ///< tenant pending-scenario budget exceeded — retry later
  kInvalidScenario = 4,  ///< a spec failed validation; reason names the index
  kShuttingDown = 5,     ///< service no longer accepts work
};

const char* to_string(SubmitStatus status);

/// Strict inverse of to_string(SubmitStatus); throws std::invalid_argument
/// on an unknown name.
SubmitStatus submit_status_from_string(const std::string& name);

/// The frozen numeric wire code (see the enum).
constexpr int wire_code(SubmitStatus status) noexcept {
  return static_cast<int>(status);
}

/// Inverse of wire_code; nullopt on a code v1 never assigned.
std::optional<SubmitStatus> submit_status_from_wire(int code) noexcept;

/// True for the overflow statuses a client is invited to retry on
/// (kQueueFullTenant, kQueueFullGlobal, kThrottled) — the cooperative
/// backpressure protocol. Invalid scenarios and shutdown are final.
bool is_backpressure(SubmitStatus status) noexcept;

/// What submit_job() hands back: an admission verdict plus — on acceptance —
/// the pollable JobTicket the client later passes to job_state() /
/// fetch_result() / cancel(). This is the primary submit surface; it is
/// what the nowsched-rpc v1 daemon speaks, and it behaves identically
/// in-process and over the wire.
struct TicketSubmission {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::string reason;
  JobTicket ticket;  ///< invalid (id 0) when rejected

  bool accepted() const noexcept { return status == SubmitStatus::kAccepted; }
};

/// What fetch_result() hands back. `state` is the job's FINAL state for a
/// consumed outcome (kDone/kFailed/kCancelled), its current state for a
/// non-waiting probe of a pending job (kQueued/kRunning), or kUnknown when
/// the id was never issued or its outcome was already fetched.
struct FetchOutcome {
  JobState state = JobState::kUnknown;
  std::string error;  ///< set when state is kFailed or kCancelled
  JobResult result;   ///< meaningful only when state == kDone

  bool done() const noexcept { return state == JobState::kDone; }
};

/// DEPRECATED shim (kept for one release — see DESIGN.md §11): the original
/// future-based submission result. New code uses submit_job()'s
/// TicketSubmission; futures cannot cross the wire, tickets can.
struct Submission {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::string reason;
  JobId job_id = 0;  ///< 0 when rejected
  std::future<JobResult> result;

  bool accepted() const noexcept { return status == SubmitStatus::kAccepted; }
};

struct ServiceOptions {
  /// Worker threads executing jobs. 0 = manual mode: run_next() drives
  /// (the deterministic test harness); >= 1 spawns resident workers.
  std::size_t workers = 2;

  QueueKind queue = QueueKind::kFifo;
  /// DRR per-visit deficit grant in scenarios (ignored by FIFO).
  std::size_t drr_quantum = 64;

  // Admission bounds. Depths are in JOBS; the throttle budget is in
  // SCENARIOS (so one tenant cannot monopolize compute with few huge jobs
  // that the job-depth limits would wave through).
  std::size_t max_queued_jobs_per_tenant = 64;
  std::size_t max_queued_jobs_total = 256;
  std::size_t max_pending_scenarios_per_tenant = 1u << 16;

  /// SolveCache byte quota for tenants that never got an explicit
  /// set_tenant_quota call.
  std::size_t default_tenant_quota_bytes = 16u << 20;  // 16 MiB
  /// Shards per tenant cache (tenants are already the coarse sharding, so
  /// fewer stripes than a process-global cache would use).
  std::size_t tenant_cache_shards = 4;

  /// Per-tenant latency ring capacity (most recent samples kept).
  std::size_t latency_window = 512;

  /// Optional persistent table-store directory mounted beneath EVERY
  /// tenant's cache (solver::MappedTableStore; see solver/table_store.h).
  /// Empty = no persistent tier, exactly the old behavior. One store serves
  /// all tenants: tables are pure functions of their canonical key, so
  /// sharing leaks no tenant data — only solves. Private byte-quota caches
  /// (and their isolation guarantees) sit above it unchanged.
  std::string shared_store_dir;
  /// Mount the shared store read-only — the warm-start deployment shape: a
  /// pre-baked store (examples/cache_bake) served to many service
  /// processes, none of which may mutate it. Read-write (the default) lets
  /// tenants' fresh solves spill for the next process to reuse.
  bool shared_store_readonly = false;
};

class SchedulerService {
 public:
  explicit SchedulerService(ServiceOptions options = {});

  /// Cancels queued jobs, lets in-flight jobs finish, joins workers —
  /// shutdown(StopMode::kCancelQueued). Call shutdown(StopMode::kDrain)
  /// first when queued work must complete.
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Admits one job — `tenant`'s batch of scenarios — and returns a
  /// pollable JobTicket. Never blocks on queue pressure: overflow returns a
  /// backpressure status instead (see SubmitStatus). Throws
  /// std::invalid_argument only on an empty tenant id (a caller bug, not
  /// load). The job's lifecycle is then observed through job_state() and
  /// consumed through fetch_result() — EXACTLY ONCE: the first fetch of a
  /// terminal outcome releases the job record, after which the id reads
  /// kUnknown. A ticket never fetched (and never forgotten) retains its
  /// result for the service's lifetime.
  TicketSubmission submit_job(const std::string& tenant,
                              std::vector<sim::ScenarioSpec> specs);

  /// Current state of a ticketed job; kUnknown when the id was never issued
  /// by submit_job or its outcome was already fetched/forgotten. A job whose
  /// cancel() was accepted reads kCancelled immediately, even while the
  /// queue entry awaits its lazy removal.
  JobState job_state(JobId id) const;

  /// Consumes a ticketed job's outcome. With wait=true blocks until the job
  /// reaches a terminal state; with wait=false returns the current state
  /// without consuming anything when the job is still kQueued/kRunning.
  /// Terminal outcomes are handed out exactly once — the record is released
  /// and subsequent calls return kUnknown. Never throws on job failure: the
  /// execution error comes back as text in FetchOutcome::error.
  FetchOutcome fetch_result(JobId id, bool wait = true);

  /// Requests cancellation of a still-queued job. Returns true when the
  /// cancel is accepted (job was kQueued; it will never execute, its state
  /// reads kCancelled at once, and its future/fetch resolves with a
  /// cancellation error). Returns false for running, terminal, unknown, or
  /// already-cancelled jobs — cancellation never preempts execution.
  bool cancel(JobId id);

  /// Releases interest in a ticketed job without consuming its result:
  /// queued jobs are cancelled, running jobs finish but their outcome is
  /// dropped on completion, terminal outcomes are discarded now. Returns
  /// false when the id is unknown. The daemon calls this for every
  /// unfetched job of a disconnected client, so abandoned tickets cannot
  /// leak results.
  bool forget(JobId id);

  /// DEPRECATED shim (one release, DESIGN.md §11): the original future-only
  /// submit. Same admission path and statuses as submit_job, but the job is
  /// NOT ticket-tracked — job_state(sub.job_id) reads kUnknown and the
  /// future is the only handle on the result.
  Submission submit(const std::string& tenant,
                    std::vector<sim::ScenarioSpec> specs);

  /// Installs a hook invoked after a job reaches a terminal state — after
  /// its counters, job-record state, and promise resolution are published,
  /// outside the service lock. The RPC server uses it to wake its poll loop
  /// the moment a parked result-wait can be answered. Pass nullptr to
  /// clear. Hooks run on worker threads (or the run_next caller): keep them
  /// cheap and non-blocking.
  void set_completion_hook(std::function<void(JobId)> hook);

  /// Sets (or creates the tenant with) the tenant's cache byte quota.
  /// Resizing a live cache evicts down immediately, keep-newest preserved
  /// per shard (SolveCache::set_max_bytes).
  void set_tenant_quota(const std::string& tenant, std::size_t bytes);

  /// Manual mode only (workers == 0): pops the next job per the queue
  /// policy and runs it on the calling thread. Returns false when the
  /// queue is empty. Throws std::logic_error when the service owns worker
  /// threads — mixing foreign threads into a running worker fleet is a
  /// bug, not a feature.
  bool run_next();

  /// Blocks until the queue is empty and nothing is in flight (manual
  /// mode: runs the queue dry on the calling thread instead). Does NOT
  /// stop accepting — a concurrent submitter can keep the service busy.
  void drain();

  enum class StopMode {
    kDrain,         ///< run every queued job, then stop
    kCancelQueued,  ///< fail queued jobs' futures, finish in-flight, stop
  };

  /// Stops accepting (submits return kShuttingDown), resolves queued work
  /// per `mode`, waits for in-flight jobs, and joins workers. Idempotent;
  /// concurrent calls serialize and the first mode wins the queued jobs.
  void shutdown(StopMode mode = StopMode::kDrain);

  /// Point-in-time snapshot: per-tenant counters/queue depths/cache
  /// stats/latency percentiles plus global sums. Safe under full load.
  ServiceStats stats() const;

  const ServiceOptions& options() const noexcept { return options_; }

  /// The shared persistent tier all tenant caches mount (nullptr when
  /// ServiceOptions::shared_store_dir is empty).
  const std::shared_ptr<solver::TableStore>& shared_store() const noexcept {
    return shared_store_;
  }

 private:
  struct Tenant {
    Tenant(std::size_t quota, std::size_t shards, std::size_t latency_window,
           std::shared_ptr<solver::TableStore> store)
        : cache(solver::SolveCache::Options{shards, quota, std::move(store)}),
          latency(latency_window),
          quota_bytes(quota) {}

    solver::SolveCache cache;
    LatencyRing latency;
    std::size_t quota_bytes;

    std::uint64_t submitted_jobs = 0;
    std::uint64_t accepted_jobs = 0;
    std::uint64_t rejected_tenant_full = 0;
    std::uint64_t rejected_global_full = 0;
    std::uint64_t rejected_throttled = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t completed_jobs = 0;
    std::uint64_t failed_jobs = 0;
    std::uint64_t cancelled_jobs = 0;
    std::uint64_t submitted_scenarios = 0;
    std::uint64_t completed_scenarios = 0;
    std::size_t queued_jobs = 0;
    std::size_t inflight_jobs = 0;
    std::size_t pending_scenarios = 0;
  };

  /// Ticket bookkeeping for one submit_job. Guarded by mu_. The shared
  /// future is the same promise chain the deprecated shim hands out — the
  /// record only adds poll/fetch/cancel state on top, so exactly-once
  /// resolution is untouched.
  struct JobRecord {
    JobState state = JobState::kQueued;
    /// cancel() accepted while the queue entry awaits its lazy removal
    /// (QueuePolicy has no random-access erase; the pop path settles it).
    bool cancel_requested = false;
    /// The outcome was already handed out or forgotten: release the record
    /// as soon as the job leaves the queue/worker.
    bool fetched = false;
    std::shared_future<JobResult> future;
  };

  void worker_loop();
  /// Runs `job` on the calling thread (no service lock held), updates the
  /// completion bookkeeping under the lock, then fulfills the promise.
  void execute(QueuedJob job, Tenant& tenant);
  /// Shared admission path of submit_job and the deprecated submit. With
  /// `ticketed` a JobRecord is registered under the same critical section
  /// that enqueues the job (and the returned Submission's future is
  /// consumed into it — the record becomes the only handle).
  Submission admit(const std::string& tenant, std::vector<sim::ScenarioSpec> specs,
                   bool ticketed);
  /// Lock held: pops queued jobs, settling cancel-requested ones into
  /// `cancelled` (their promises are resolved by the caller OUTSIDE mu_),
  /// until a runnable job emerges (true) or the queue runs dry (false).
  bool next_runnable_locked(QueuedJob& job, Tenant*& tenant,
                            std::vector<QueuedJob>& cancelled);
  /// Resolves the promises of pop-settled cancellations (outside mu_) and
  /// fires the completion hook for each.
  void settle_cancelled(std::vector<QueuedJob>& cancelled);
  /// Lock held: find-or-create the tenant record.
  Tenant& tenant_locked(const std::string& id);

  ServiceOptions options_;
  /// Built once in the constructor, then only read (TableStore does its own
  /// locking) — safe to hand to tenant caches without mu_.
  std::shared_ptr<solver::TableStore> shared_store_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for jobs/stop here
  std::condition_variable idle_cv_;  ///< drain/shutdown wait for quiescence

  std::unique_ptr<QueuePolicy> queue_;  // guarded by mu_
  // unordered_map: node stability lets execute() hold a Tenant& with mu_
  // released (the tenant's cache does its own locking).
  std::unordered_map<std::string, Tenant> tenants_;  // guarded by mu_
  std::unordered_map<JobId, JobRecord> jobs_;        // guarded by mu_
  std::function<void(JobId)> completion_hook_;       // guarded by mu_

  std::size_t queued_total_ = 0;    // guarded by mu_
  std::size_t inflight_total_ = 0;  // guarded by mu_
  std::uint64_t next_seq_ = 0;      // guarded by mu_
  JobId next_job_id_ = 1;           // guarded by mu_
  std::uint64_t completions_ = 0;   // guarded by mu_
  bool accepting_ = true;           // guarded by mu_
  bool stop_workers_ = false;       // guarded by mu_

  std::mutex lifecycle_mu_;  ///< serializes shutdown(); taken before mu_
  bool joined_ = false;      // guarded by lifecycle_mu_

  std::vector<std::thread> workers_;
};

}  // namespace nowsched::service
