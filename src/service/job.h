// Job and result types shared by service::QueuePolicy and
// service::SchedulerService (split out so the queue disciplines do not
// depend on the service class that drives them).
//
// A job is one tenant's scenario batch: the unit of admission, queueing,
// and execution. Its `cost` — the scenario count — is the service currency
// the deficit-round-robin policy meters fair shares in, and the unit the
// per-tenant throttle budget (ServiceOptions::max_pending_scenarios_per_
// tenant) is expressed in.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "sim/batch_runner.h"

namespace nowsched::service {

using JobId = std::uint64_t;

/// Lifecycle of a ticket-tracked job as observed through the JobTicket
/// handle API (and over nowsched-rpc v1). The numeric values are FROZEN
/// WIRE CODES — they appear verbatim in JobStatusReply/JobResultReply
/// frames, so they must never be renumbered or reused.
enum class JobState : int {
  kUnknown = 0,    ///< no such job (never existed, or its result was fetched)
  kQueued = 1,     ///< admitted, waiting for the queue policy to pick it
  kRunning = 2,    ///< a worker is executing the scenario batch
  kDone = 3,       ///< finished; the JobResult awaits exactly one fetch
  kFailed = 4,     ///< execution threw; the error text awaits one fetch
  kCancelled = 5,  ///< cancelled before it ran (cancel() or shutdown)
};

/// Stable text names ("unknown", "queued", ...) for logs and the wire
/// protocol's human-readable fields.
const char* to_string(JobState state);

/// Strict inverse of to_string(JobState); throws std::invalid_argument on
/// an unknown name (the util/parse.h discipline: typos never pass).
JobState job_state_from_string(const std::string& name);

/// The frozen numeric wire code (see the enum). Kept as a named function so
/// call sites say what they mean instead of scattering static_casts.
constexpr int wire_code(JobState state) noexcept { return static_cast<int>(state); }

/// Inverse of wire_code; nullopt on a code v1 never assigned.
std::optional<JobState> job_state_from_wire(int code) noexcept;

/// The pollable handle submit_job hands back: a request id plus the tenant
/// it was issued to. Tickets are plain values — they can cross process
/// boundaries (the daemon sends the id over the wire) and outlive the
/// future-based shim entirely.
struct JobTicket {
  JobId id = 0;
  std::string tenant;

  bool valid() const noexcept { return id != 0; }
};

/// What a completed job hands back through its future.
struct JobResult {
  std::string tenant;
  JobId job_id = 0;
  /// 0-based position in the service's global completion order, assigned
  /// under the service lock the moment the job finishes. This is the
  /// observable the deterministic scheduling-order tests and the E15
  /// fairness window read — an ordering fact, never a wall-clock one.
  std::uint64_t completion_index = 0;
  /// Submit-to-completion wall latency. Informational (stats/benches) only:
  /// tests assert ordering and conservation invariants, never timing.
  double latency_ms = 0.0;
  /// Index-aligned per-scenario metrics plus the tenant cache's counters at
  /// completion. Bit-identical to a direct BatchRunner::run over the same
  /// specs — the service-vs-batch conformance differential pins this.
  sim::BatchResult batch;
};

/// A queued unit of work as the queue disciplines see it. Move-only (it
/// carries the promise the submitting client holds the future of).
struct QueuedJob {
  std::uint64_t seq = 0;  ///< global admission order — the FIFO sort key
  JobId id = 0;
  std::string tenant;
  std::size_t cost = 0;  ///< == specs.size(); the DRR service currency
  std::vector<sim::ScenarioSpec> specs;
  std::promise<JobResult> promise;
  std::chrono::steady_clock::time_point submitted_at{};
};

}  // namespace nowsched::service
