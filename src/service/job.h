// Job and result types shared by service::QueuePolicy and
// service::SchedulerService (split out so the queue disciplines do not
// depend on the service class that drives them).
//
// A job is one tenant's scenario batch: the unit of admission, queueing,
// and execution. Its `cost` — the scenario count — is the service currency
// the deficit-round-robin policy meters fair shares in, and the unit the
// per-tenant throttle budget (ServiceOptions::max_pending_scenarios_per_
// tenant) is expressed in.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "sim/batch_runner.h"

namespace nowsched::service {

using JobId = std::uint64_t;

/// What a completed job hands back through its future.
struct JobResult {
  std::string tenant;
  JobId job_id = 0;
  /// 0-based position in the service's global completion order, assigned
  /// under the service lock the moment the job finishes. This is the
  /// observable the deterministic scheduling-order tests and the E15
  /// fairness window read — an ordering fact, never a wall-clock one.
  std::uint64_t completion_index = 0;
  /// Submit-to-completion wall latency. Informational (stats/benches) only:
  /// tests assert ordering and conservation invariants, never timing.
  double latency_ms = 0.0;
  /// Index-aligned per-scenario metrics plus the tenant cache's counters at
  /// completion. Bit-identical to a direct BatchRunner::run over the same
  /// specs — the service-vs-batch conformance differential pins this.
  sim::BatchResult batch;
};

/// A queued unit of work as the queue disciplines see it. Move-only (it
/// carries the promise the submitting client holds the future of).
struct QueuedJob {
  std::uint64_t seq = 0;  ///< global admission order — the FIFO sort key
  JobId id = 0;
  std::string tenant;
  std::size_t cost = 0;  ///< == specs.size(); the DRR service currency
  std::vector<sim::ScenarioSpec> specs;
  std::promise<JobResult> promise;
  std::chrono::steady_clock::time_point submitted_at{};
};

}  // namespace nowsched::service
