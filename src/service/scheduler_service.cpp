#include "service/scheduler_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

namespace nowsched::service {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

constexpr const char* kCancelledMessage =
    "SchedulerService: job cancelled before execution";

constexpr SubmitStatus kAllSubmitStatuses[] = {
    SubmitStatus::kAccepted,        SubmitStatus::kQueueFullTenant,
    SubmitStatus::kQueueFullGlobal, SubmitStatus::kThrottled,
    SubmitStatus::kInvalidScenario, SubmitStatus::kShuttingDown,
};

constexpr JobState kAllJobStates[] = {
    JobState::kUnknown, JobState::kQueued,    JobState::kRunning,
    JobState::kDone,    JobState::kFailed,    JobState::kCancelled,
};

}  // namespace

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFullTenant: return "queue-full-tenant";
    case SubmitStatus::kQueueFullGlobal: return "queue-full-global";
    case SubmitStatus::kThrottled: return "throttled";
    case SubmitStatus::kInvalidScenario: return "invalid-scenario";
    case SubmitStatus::kShuttingDown: return "shutting-down";
  }
  return "?";
}

SubmitStatus submit_status_from_string(const std::string& name) {
  for (SubmitStatus status : kAllSubmitStatuses) {
    if (name == to_string(status)) return status;
  }
  throw std::invalid_argument("unknown submit status: '" + name + "'");
}

std::optional<SubmitStatus> submit_status_from_wire(int code) noexcept {
  for (SubmitStatus status : kAllSubmitStatuses) {
    if (code == wire_code(status)) return status;
  }
  return std::nullopt;
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kUnknown: return "unknown";
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

JobState job_state_from_string(const std::string& name) {
  for (JobState state : kAllJobStates) {
    if (name == to_string(state)) return state;
  }
  throw std::invalid_argument("unknown job state: '" + name + "'");
}

std::optional<JobState> job_state_from_wire(int code) noexcept {
  for (JobState state : kAllJobStates) {
    if (code == wire_code(state)) return state;
  }
  return std::nullopt;
}

bool is_backpressure(SubmitStatus status) noexcept {
  return status == SubmitStatus::kQueueFullTenant ||
         status == SubmitStatus::kQueueFullGlobal ||
         status == SubmitStatus::kThrottled;
}

SchedulerService::SchedulerService(ServiceOptions options)
    : options_(options),
      queue_(make_queue_policy(options_.queue, options_.drr_quantum)) {
  options_.tenant_cache_shards = std::max<std::size_t>(1, options_.tenant_cache_shards);
  options_.latency_window = std::max<std::size_t>(1, options_.latency_window);
  if (!options_.shared_store_dir.empty()) {
    // Throws on a misconfigured directory — a deployment bug the operator
    // must see at startup, not a per-job failure.
    shared_store_ = std::make_shared<solver::MappedTableStore>(
        solver::MappedTableStore::Options{options_.shared_store_dir,
                                          options_.shared_store_readonly});
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SchedulerService::~SchedulerService() { shutdown(StopMode::kCancelQueued); }

SchedulerService::Tenant& SchedulerService::tenant_locked(const std::string& id) {
  auto [it, inserted] =
      tenants_.try_emplace(id, options_.default_tenant_quota_bytes,
                           options_.tenant_cache_shards, options_.latency_window,
                           shared_store_);
  return it->second;
}

Submission SchedulerService::admit(const std::string& tenant,
                                   std::vector<sim::ScenarioSpec> specs,
                                   bool ticketed) {
  if (tenant.empty()) {
    throw std::invalid_argument("SchedulerService::submit: empty tenant id");
  }

  // Validate outside the lock (validation walks every spec); the verdict is
  // applied under the lock in the fixed rejection order below.
  std::string invalid_reason;
  bool invalid = false;
  if (specs.empty()) {
    invalid = true;
    invalid_reason = "empty scenario batch";
  } else {
    try {
      sim::validate_batch_specs(specs);
    } catch (const std::invalid_argument& e) {
      invalid = true;
      invalid_reason = e.what();
    }
  }
  const std::size_t cost = specs.size();

  Submission out;
  std::promise<JobResult> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Tenant& t = tenant_locked(tenant);
    ++t.submitted_jobs;

    // Fixed rejection order: shutdown > invalid > global full > tenant full
    // > throttled — so a rejection reason is deterministic even when several
    // limits are exceeded at once.
    if (!accepting_) {
      ++t.rejected_shutdown;
      out.status = SubmitStatus::kShuttingDown;
      out.reason = "service is shutting down";
      return out;
    }
    if (invalid) {
      ++t.rejected_invalid;
      out.status = SubmitStatus::kInvalidScenario;
      out.reason = invalid_reason;
      return out;
    }
    if (queued_total_ >= options_.max_queued_jobs_total) {
      ++t.rejected_global_full;
      out.status = SubmitStatus::kQueueFullGlobal;
      out.reason = "global queue depth limit reached (" +
                   std::to_string(options_.max_queued_jobs_total) + " jobs)";
      return out;
    }
    if (t.queued_jobs >= options_.max_queued_jobs_per_tenant) {
      ++t.rejected_tenant_full;
      out.status = SubmitStatus::kQueueFullTenant;
      out.reason = "tenant queue depth limit reached (" +
                   std::to_string(options_.max_queued_jobs_per_tenant) + " jobs)";
      return out;
    }
    if (t.pending_scenarios + cost > options_.max_pending_scenarios_per_tenant) {
      ++t.rejected_throttled;
      out.status = SubmitStatus::kThrottled;
      out.reason = "tenant pending-scenario budget exceeded (" +
                   std::to_string(t.pending_scenarios) + " pending + " +
                   std::to_string(cost) + " > " +
                   std::to_string(options_.max_pending_scenarios_per_tenant) + ")";
      return out;
    }

    QueuedJob job;
    job.seq = next_seq_++;
    job.id = next_job_id_++;
    job.tenant = tenant;
    job.cost = cost;
    job.specs = std::move(specs);
    job.submitted_at = std::chrono::steady_clock::now();
    out.status = SubmitStatus::kAccepted;
    out.job_id = job.id;
    out.result = job.promise.get_future();

    if (ticketed) {
      // The record MUST land under the same critical section that enqueues
      // the job: a worker popping it transitions the record it FINDS, so a
      // late insert would shadow kRunning/kDone forever.
      JobRecord record;
      record.future = out.result.share();  // out.result becomes invalid
      jobs_.emplace(job.id, std::move(record));
    }

    ++t.accepted_jobs;
    t.submitted_scenarios += cost;
    ++t.queued_jobs;
    t.pending_scenarios += cost;
    ++queued_total_;
    queue_->push(std::move(job));
  }
  work_cv_.notify_one();
  return out;
}

TicketSubmission SchedulerService::submit_job(const std::string& tenant,
                                              std::vector<sim::ScenarioSpec> specs) {
  Submission sub = admit(tenant, std::move(specs), /*ticketed=*/true);
  TicketSubmission out;
  out.status = sub.status;
  out.reason = std::move(sub.reason);
  if (!sub.accepted()) return out;
  out.ticket.id = sub.job_id;
  out.ticket.tenant = tenant;
  return out;
}

Submission SchedulerService::submit(const std::string& tenant,
                                    std::vector<sim::ScenarioSpec> specs) {
  return admit(tenant, std::move(specs), /*ticketed=*/false);
}

JobState SchedulerService::job_state(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return JobState::kUnknown;
  // A cancel that has not been settled by the pop path yet is already
  // decided: report it as cancelled so poll loops converge immediately.
  if (it->second.cancel_requested && it->second.state == JobState::kQueued) {
    return JobState::kCancelled;
  }
  return it->second.state;
}

FetchOutcome SchedulerService::fetch_result(JobId id, bool wait) {
  for (;;) {
    std::shared_future<JobResult> future;
    JobState state = JobState::kUnknown;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(id);
      if (it == jobs_.end()) {
        FetchOutcome out;
        out.state = JobState::kUnknown;
        return out;
      }
      JobRecord& record = it->second;
      state = record.state;
      if (record.cancel_requested && state == JobState::kQueued) {
        // Already consumed (a prior fetch or a forget()) but the pop path
        // has not erased the record yet: exactly-once means any further
        // fetch observes kUnknown, same as after the erase.
        if (record.fetched) {
          FetchOutcome out;
          out.state = JobState::kUnknown;
          return out;
        }
        // Decided but not yet settled by the pop path. Mark it fetched so
        // settlement erases the record — this IS the one fetch.
        record.fetched = true;
        FetchOutcome out;
        out.state = JobState::kCancelled;
        out.error = kCancelledMessage;
        return out;
      }
      const bool terminal = state == JobState::kDone ||
                            state == JobState::kFailed ||
                            state == JobState::kCancelled;
      if (terminal) {
        // Exactly-once: the record is gone before the lock drops, so a
        // second fetch (or a concurrent one) sees kUnknown.
        future = std::move(record.future);
        jobs_.erase(it);
      } else if (wait) {
        future = record.future;  // copy; the record stays for state polls
      } else {
        FetchOutcome out;
        out.state = state;
        return out;
      }
    }

    FetchOutcome out;
    out.state = state;
    if (state == JobState::kDone) {
      out.result = future.get();  // ready: state was terminal under mu_
      return out;
    }
    if (state == JobState::kFailed || state == JobState::kCancelled) {
      try {
        future.get();
        out.error = "unknown error";  // unreachable: terminal non-done holds one
      } catch (const std::exception& e) {
        out.error = e.what();
      } catch (...) {
        out.error = "unknown error";
      }
      return out;
    }
    // Pending and wait requested: block outside mu_ until the job resolves,
    // then loop — the next pass observes a terminal state and consumes it.
    future.wait();
  }
}

bool SchedulerService::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  JobRecord& record = it->second;
  if (record.state != JobState::kQueued || record.cancel_requested) return false;
  // Lazy cancellation: QueuePolicy has no random-access erase, so the flag
  // is settled (counters, promise, record state) when the pop path next
  // encounters the job. Observers see kCancelled immediately (job_state /
  // fetch_result special-case the flag).
  record.cancel_requested = true;
  return true;
}

bool SchedulerService::forget(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  JobRecord& record = it->second;
  switch (record.state) {
    case JobState::kQueued:
      // Never run work nobody will read; settlement erases the record.
      record.cancel_requested = true;
      record.fetched = true;
      return true;
    case JobState::kRunning:
      record.fetched = true;  // execute() erases on completion
      return true;
    default:
      jobs_.erase(it);
      return true;
  }
}

void SchedulerService::set_completion_hook(std::function<void(JobId)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  completion_hook_ = std::move(hook);
}

void SchedulerService::set_tenant_quota(const std::string& tenant,
                                        std::size_t bytes) {
  if (tenant.empty()) {
    throw std::invalid_argument("SchedulerService::set_tenant_quota: empty tenant id");
  }
  solver::SolveCache* cache = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Tenant& t = tenant_locked(tenant);
    t.quota_bytes = bytes;
    cache = &t.cache;
  }
  // Resize outside mu_: eviction takes the cache's stripe locks, and there is
  // no need to stall submit/stats while tables are dropped.
  cache->set_max_bytes(bytes);
}

bool SchedulerService::next_runnable_locked(QueuedJob& job, Tenant*& tenant,
                                            std::vector<QueuedJob>& cancelled) {
  while (!queue_->empty()) {
    QueuedJob next = queue_->pop();
    Tenant& t = tenants_.find(next.tenant)->second;
    --queued_total_;
    --t.queued_jobs;

    const auto it = jobs_.find(next.id);
    if (it != jobs_.end() && it->second.cancel_requested) {
      // Lazy cancel settlement: the job leaves the queue here, so this is
      // where its admission bookkeeping unwinds (keeping the conservation
      // law accepted == completed + failed + cancelled + queued + inflight).
      t.pending_scenarios -= next.cost;
      ++t.cancelled_jobs;
      it->second.state = JobState::kCancelled;
      if (it->second.fetched) jobs_.erase(it);
      cancelled.push_back(std::move(next));
      continue;
    }
    if (it != jobs_.end()) it->second.state = JobState::kRunning;
    ++inflight_total_;
    ++t.inflight_jobs;
    job = std::move(next);
    tenant = &t;
    return true;
  }
  return false;
}

void SchedulerService::settle_cancelled(std::vector<QueuedJob>& cancelled) {
  if (cancelled.empty()) return;
  std::function<void(JobId)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = completion_hook_;
  }
  for (QueuedJob& job : cancelled) {
    job.promise.set_exception(
        std::make_exception_ptr(std::runtime_error(kCancelledMessage)));
    if (hook) hook(job.id);
  }
  idle_cv_.notify_all();  // drain() may be waiting on the queue running dry
  cancelled.clear();
}

void SchedulerService::worker_loop() {
  for (;;) {
    QueuedJob job;
    Tenant* tenant = nullptr;
    std::vector<QueuedJob> cancelled;
    bool runnable = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_workers_ || !queue_->empty(); });
      if (queue_->empty()) return;  // stop_workers_ and nothing left to run
      runnable = next_runnable_locked(job, tenant, cancelled);
    }
    settle_cancelled(cancelled);
    if (runnable) execute(std::move(job), *tenant);
  }
}

bool SchedulerService::run_next() {
  if (options_.workers != 0) {
    throw std::logic_error(
        "SchedulerService::run_next: service owns worker threads "
        "(manual pumping requires ServiceOptions::workers == 0)");
  }
  QueuedJob job;
  Tenant* tenant = nullptr;
  std::vector<QueuedJob> cancelled;
  bool runnable = false;
  bool popped_any = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_->empty()) return false;
    runnable = next_runnable_locked(job, tenant, cancelled);
    popped_any = runnable || !cancelled.empty();
  }
  settle_cancelled(cancelled);
  if (runnable) execute(std::move(job), *tenant);
  // True when any queue entry was consumed — a run OR a cancel settlement —
  // so `while (service.run_next()) {}` still pumps the queue dry.
  return popped_any;
}

void SchedulerService::execute(QueuedJob job, Tenant& tenant) {
  JobResult result;
  result.tenant = job.tenant;
  result.job_id = job.id;
  std::exception_ptr error;
  try {
    sim::BatchOptions batch_options;
    batch_options.pool = nullptr;  // parallelism comes from service workers
    batch_options.cache_enabled = true;
    batch_options.shared_cache = &tenant.cache;
    sim::BatchRunner runner(batch_options);
    result.batch = runner.run(job.specs);
  } catch (...) {
    error = std::current_exception();
  }
  result.latency_ms = ms_since(job.submitted_at);

  std::function<void(JobId)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_total_;
    --tenant.inflight_jobs;
    tenant.pending_scenarios -= job.cost;
    if (error == nullptr) {
      ++tenant.completed_jobs;
      tenant.completed_scenarios += job.cost;
      result.completion_index = completions_++;
      tenant.latency.add(result.latency_ms);
    } else {
      ++tenant.failed_jobs;
    }
    const auto it = jobs_.find(job.id);
    if (it != jobs_.end()) {
      if (it->second.fetched) {
        // The ticket holder already walked away (forget / fetch of a
        // cancelled state cannot reach here, but forget-while-running does):
        // the terminal record has no reader, drop it now.
        jobs_.erase(it);
      } else {
        it->second.state = error == nullptr ? JobState::kDone : JobState::kFailed;
      }
    }
    hook = completion_hook_;
  }
  idle_cv_.notify_all();

  // Fulfill AFTER publishing the counters: a client whose future is ready is
  // guaranteed to observe its own completion in stats().
  if (error == nullptr) {
    job.promise.set_value(std::move(result));
  } else {
    job.promise.set_exception(std::move(error));
  }
  // Hook AFTER fulfillment: a waiter woken by the hook must find the future
  // ready (fetch_result never blocks after the hook fires for its id).
  if (hook) hook(job.id);
}

void SchedulerService::drain() {
  if (options_.workers == 0) {
    while (run_next()) {
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_->empty() && inflight_total_ == 0; });
}

void SchedulerService::shutdown(StopMode mode) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);

  std::vector<QueuedJob> cancelled;
  std::function<void(JobId)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    if (mode == StopMode::kCancelQueued) {
      queue_->drain([&](QueuedJob&& job) {
        Tenant& t = tenants_.find(job.tenant)->second;
        --t.queued_jobs;
        t.pending_scenarios -= job.cost;
        ++t.cancelled_jobs;
        --queued_total_;
        const auto it = jobs_.find(job.id);
        if (it != jobs_.end()) {
          it->second.state = JobState::kCancelled;
          if (it->second.fetched) jobs_.erase(it);
        }
        cancelled.push_back(std::move(job));
      });
    }
    hook = completion_hook_;
  }
  for (QueuedJob& job : cancelled) {
    job.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("SchedulerService: job cancelled by shutdown")));
    if (hook) hook(job.id);
  }

  if (options_.workers == 0) {
    if (mode == StopMode::kDrain) {
      while (run_next()) {
      }
    }
    joined_ = true;
    return;
  }

  {
    // kDrain: workers keep consuming until the queue is dry; kCancelQueued
    // already emptied it. Either way, wait for in-flight work to land.
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_->empty() && inflight_total_ == 0; });
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  if (!joined_) {
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    joined_ = true;
  }
}

ServiceStats SchedulerService::stats() const {
  ServiceStats out;
  std::vector<double> pooled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.queue_policy = queue_->name();
    out.workers = options_.workers;
    out.queued_jobs = queued_total_;
    out.inflight_jobs = inflight_total_;
    out.tenants.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) {
      TenantStats ts;
      ts.tenant = id;
      ts.quota_bytes = t.quota_bytes;
      ts.submitted_jobs = t.submitted_jobs;
      ts.accepted_jobs = t.accepted_jobs;
      ts.rejected_tenant_full = t.rejected_tenant_full;
      ts.rejected_global_full = t.rejected_global_full;
      ts.rejected_throttled = t.rejected_throttled;
      ts.rejected_invalid = t.rejected_invalid;
      ts.rejected_shutdown = t.rejected_shutdown;
      ts.completed_jobs = t.completed_jobs;
      ts.failed_jobs = t.failed_jobs;
      ts.cancelled_jobs = t.cancelled_jobs;
      ts.submitted_scenarios = t.submitted_scenarios;
      ts.completed_scenarios = t.completed_scenarios;
      ts.queued_jobs = t.queued_jobs;
      ts.inflight_jobs = t.inflight_jobs;
      ts.pending_scenarios = t.pending_scenarios;
      // Lock order mu_ -> cache stripes, same as execute(); never inverted.
      ts.cache = t.cache.stats();
      const std::vector<double> samples = t.latency.samples();
      ts.latency = summarize_latency(samples);
      pooled.insert(pooled.end(), samples.begin(), samples.end());

      out.submitted_jobs += ts.submitted_jobs;
      out.accepted_jobs += ts.accepted_jobs;
      out.rejected_jobs += ts.rejected_total();
      out.completed_jobs += ts.completed_jobs;
      out.failed_jobs += ts.failed_jobs;
      out.cancelled_jobs += ts.cancelled_jobs;
      out.completed_scenarios += ts.completed_scenarios;
      out.tenants.push_back(std::move(ts));
    }
  }
  out.latency = summarize_latency(pooled);
  std::sort(out.tenants.begin(), out.tenants.end(),
            [](const TenantStats& a, const TenantStats& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

}  // namespace nowsched::service
