#include "service/service_stats.h"

#include <algorithm>

#include "util/stats.h"

namespace nowsched::service {

LatencyRing::LatencyRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void LatencyRing::add(double ms) {
  if (ring_.size() < capacity_) {
    ring_.push_back(ms);
  } else {
    ring_[static_cast<std::size_t>(recorded_ % capacity_)] = ms;
  }
  ++recorded_;
}

std::vector<double> LatencyRing::samples() const { return ring_; }

LatencySummary summarize_latency(const std::vector<double>& samples_ms) {
  LatencySummary out;
  if (samples_ms.empty()) return out;
  const util::Summary summary(samples_ms);
  out.count = summary.count();
  out.p50_ms = summary.quantile(0.50);
  out.p90_ms = summary.quantile(0.90);
  out.p99_ms = summary.quantile(0.99);
  out.max_ms = summary.max();
  return out;
}

double jains_fairness(const std::vector<double>& allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

const TenantStats* ServiceStats::tenant(const std::string& id) const noexcept {
  for (const TenantStats& t : tenants) {
    if (t.tenant == id) return &t;
  }
  return nullptr;
}

}  // namespace nowsched::service
