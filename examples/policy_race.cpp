// policy_race — race scheduling policies against each other over generated
// scenario regions from the command line, or hunt the scenario space for
// the regions where a guideline policy's exact regret against the DP
// optimum is worst. Verdict records use the same strict text format the
// library round-trips bit-exactly (`nowsched-verdict v1`), so a saved file
// IS the reproducible claim.
//
//   policy_race                                  # race the default arm set
//   policy_race --mode=sh --budget=4096          # successive halving
//   policy_race --policies=equalized,adaptive-paper --owners=bursty
//   policy_race --out=verdicts.txt               # save the verdict records
//   policy_race --hunt --probes=16 --rounds=3    # adversarial regret hunt
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "nowsched.h"

using namespace nowsched;

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

race::Region make_region(const std::string& owner_name, Ticks min_u, Ticks max_u) {
  race::Region region;
  region.name = owner_name;
  region.domain.owners = {sim::owner_kind_from_string(owner_name)};
  region.domain.min_c = 8;
  region.domain.max_c = 16;
  region.domain.min_lifespan = min_u;
  region.domain.max_lifespan = max_u;
  region.domain.min_interrupts = 1;
  region.domain.max_interrupts = 3;
  region.domain.contract_classes = 6;
  region.domain.class_fraction = 0.5;
  return region;
}

int write_verdicts(const std::string& path,
                   const std::vector<race::VerdictRecord>& verdicts) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "policy_race: cannot open " << path << " for writing\n";
    return 1;
  }
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i > 0) out << "\n";
    out << "# verdict " << i + 1 << " of " << verdicts.size() << "\n";
    out << race::to_verdict_string(verdicts[i]);
  }
  std::cout << "wrote " << verdicts.size() << " verdict record"
            << (verdicts.size() == 1 ? "" : "s") << " to " << path << "\n";
  return 0;
}

int run_hunt(const util::Flags& flags) {
  race::Region root = make_region(flags.get("owners", "poisson"),
                                  64, flags.get_int("max-u", 1024));
  root.name = "all";
  root.domain.contract_classes = 0;  // hunt the raw contract space

  std::vector<sim::PolicyKind> policies;
  for (const std::string& name :
       split_csv(flags.get("policies", "equalized,adaptive-paper,nonadaptive-restart"))) {
    policies.push_back(sim::policy_kind_from_string(name));
  }

  race::RegretHuntOptions options;
  options.probes_per_region =
      static_cast<std::size_t>(flags.get_int("probes", 16));
  options.rounds = static_cast<std::size_t>(flags.get_int("rounds", 3));
  options.beam = static_cast<std::size_t>(flags.get_int("beam", 2));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  solver::SolveCache cache;
  const race::RegretHuntResult hunt =
      race::hunt_regret(root, policies, options, cache);

  std::cout << "regret hunt: " << hunt.scenarios_evaluated
            << " exact-regret probes (" << options.rounds << " split rounds, beam "
            << options.beam << ")\n\n";
  util::Table table({"region", "policy", "mean regret", "worst regret", "probes"});
  const std::size_t shown = std::min<std::size_t>(hunt.ranked.size(), 10);
  for (std::size_t i = 0; i < shown; ++i) {
    const race::RegionRegret& rr = hunt.ranked[i];
    table.add_row({rr.region.name, sim::to_string(rr.policy),
                   util::Table::fmt(rr.regret.mean, 5),
                   util::Table::fmt(rr.worst_regret, 5),
                   util::Table::fmt(static_cast<unsigned long long>(rr.regret.n))});
  }
  std::cout << table.to_string() << "\n";

  if (!hunt.ranked.empty()) {
    std::cout << "worst single scenario (replayable with scenario_fuzz --replay):\n"
              << sim::to_replay_string(hunt.ranked.front().worst) << "\n";
  }

  const std::string out = flags.get("out", "");
  if (!out.empty()) return write_verdicts(out, hunt.verdicts);
  if (!hunt.verdicts.empty()) {
    std::cout << "top verdict record (save all with --out=<file>):\n"
              << race::to_verdict_string(hunt.verdicts.front());
  }
  return 0;
}

int run_race(const util::Flags& flags) {
  const std::string mode_name = flags.get("mode", "lucb");
  race::Mode mode = race::Mode::kLucb;
  if (mode_name == "sh" || mode_name == "successive-halving") {
    mode = race::Mode::kSuccessiveHalving;
  } else if (mode_name == "uniform") {
    mode = race::Mode::kUniform;
  } else if (mode_name != "lucb") {
    std::cerr << "policy_race: unknown --mode=" << mode_name
              << " (expected lucb, sh, or uniform)\n";
    return 1;
  }

  const Ticks max_u = flags.get_int("max-u", 1024);
  std::vector<race::Region> regions;
  for (const std::string& owner : split_csv(flags.get("owners", "poisson,bursty"))) {
    regions.push_back(make_region(owner, max_u / 2, max_u));
  }
  std::vector<race::PolicyArm> arms;
  for (const std::string& name :
       split_csv(flags.get("policies", "dp-optimal,equalized,adaptive-paper"))) {
    const sim::PolicyKind policy = sim::policy_kind_from_string(name);
    for (std::size_t r = 0; r < regions.size(); ++r) {
      arms.push_back({policy, r});
    }
  }

  race::PolicyRaceOptions options;
  options.race.mode = mode;
  options.race.delta = flags.get_double("delta", 0.05);
  options.race.epsilon = flags.get_double("epsilon", 0.1);
  options.race.batch = static_cast<std::size_t>(flags.get_int("batch", 8));
  options.race.budget = static_cast<std::size_t>(flags.get_int("budget", 4096));
  options.race.max_total_pulls =
      static_cast<std::size_t>(flags.get_int("cap", 16384));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  util::ThreadPool pool(static_cast<std::size_t>(flags.get_int("threads", 4)));
  options.batch.pool = &pool;

  race::PolicyRace policy_race(regions, arms, options);
  const race::PolicyRaceResult result = policy_race.run();
  const race::RaceResult& r = result.race;

  std::cout << "policy_race: " << arms.size() << " arms, mode "
            << race::to_string(mode) << ", delta " << options.race.delta
            << ", epsilon " << options.race.epsilon << ", seed " << options.seed
            << "\n";
  std::cout << "verdict: best arm " << race::arm_label(arms[r.best], regions)
            << (r.confident ? " (confident)" : " (budget exhausted, NOT confident)")
            << " after " << r.total_pulls << " pulls / " << r.rounds
            << " rounds\n\n";

  util::Table table({"arm", "mean", "lower", "upper", "pulls", "eliminated"});
  for (std::size_t i = 0; i < r.arms.size(); ++i) {
    const race::ArmOutcome& arm = r.arms[i];
    table.add_row({race::arm_label(arms[i], regions),
                   util::Table::fmt(arm.stats.mean, 5),
                   util::Table::fmt(arm.lower, 5), util::Table::fmt(arm.upper, 5),
                   util::Table::fmt(static_cast<unsigned long long>(arm.stats.n)),
                   arm.round_eliminated == 0
                       ? std::string("-")
                       : "round " + std::to_string(arm.round_eliminated)});
  }
  std::cout << table.to_string() << "\n";
  const solver::SolveCacheStats cache = policy_race.cache_stats();
  std::cout << "solve cache: " << cache.hits << " hits / " << cache.misses
            << " misses\n";

  const std::string out = flags.get("out", "");
  if (!out.empty()) return write_verdicts(out, result.verdicts);
  if (!result.verdicts.empty()) {
    std::cout << "\ntop verdict record (save all with --out=<file>):\n"
              << race::to_verdict_string(result.verdicts.front());
  }
  return 0;
}

}  // namespace

int main(int argc, const char* const* argv) {
  const util::Flags flags(argc, argv);
  if (flags.get_bool("hunt", false)) return run_hunt(flags);
  return run_race(flags);
}
