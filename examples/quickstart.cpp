// Quickstart: schedule one cycle-stealing opportunity and see what the
// guidelines guarantee.
//
//   ./quickstart --u=32768 --p=2 --c=16
//
// Walks through the whole public API surface in ~80 lines: build schedules,
// evaluate them against the malicious adversary, compare with the exact
// optimum, and simulate a session.
#include <iostream>

#include "nowsched.h"

using namespace nowsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const Params params{flags.get_int("c", 16)};
  const Ticks u = flags.get_int("u", 16 * 2048);
  const int p = static_cast<int>(flags.get_int("p", 2));

  std::cout << "Cycle-stealing opportunity: lifespan U = " << u << " ticks, up to p = "
            << p << " interrupts, setup cost c = " << params.c << " ticks/period\n\n";

  // 1. The paper's §3.1 non-adaptive guideline: equal periods, committed.
  const auto committed = nonadaptive_guideline(u, p, params);
  std::cout << "S_na(p)[U]  (§3.1): " << committed.to_string() << "\n"
            << "  guaranteed work (committed semantics): "
            << solver::nonadaptive_guaranteed_work(committed, u, p, params) << "\n\n";

  // 2. The §3.2 adaptive guideline: replanned after every interrupt.
  const AdaptiveGuidelinePolicy adaptive;
  std::cout << "Sigma_a(p)[U] (§3.2) first episode: "
            << adaptive.episode(u, p, params).to_string() << "\n"
            << "  guaranteed work (adaptive): "
            << solver::evaluate_policy(adaptive, u, p, params) << "\n\n";

  // 3. The §4.2 equalized guideline — Thm 4.3 made constructive.
  const EqualizedGuidelinePolicy equalized;
  std::cout << "Equalized guideline first episode: "
            << equalized.episode(u, p, params).to_string() << "\n"
            << "  guaranteed work (adaptive): "
            << solver::evaluate_policy(equalized, u, p, params) << "\n\n";

  // 4. Ground truth: the exact optimum W(p)[U] from the minimax DP.
  const auto table = solver::solve_fast(p, u, params);
  std::cout << "Exact optimum W(p)[U] = " << table.value(p, u) << "\n"
            << "Analytic bound (Thm 5.1 leading term) = "
            << bounds::adaptive_work_leading(static_cast<double>(u), p,
                                             static_cast<double>(params.c))
            << "\n\n";

  // 5. Simulate a session against the worst case and against a random owner.
  const auto br = solver::best_response(equalized, u, p, params);
  std::cout << "Worst-case adversary play against the equalized policy banks "
            << br.value << ":\n";
  for (const auto& move : br.moves) {
    std::cout << "  episode at residual " << move.episode_lifespan << " (q="
              << move.interrupts_left << "): ";
    if (move.killed) {
      std::cout << "owner kills period " << *move.killed + 1 << ", banked "
                << move.banked << "\n";
    } else {
      std::cout << "runs to completion, banked " << move.banked << "\n";
    }
  }

  adversary::PoissonAdversary relaxed_owner(static_cast<double>(u) / 3.0, /*seed=*/7);
  const auto metrics = sim::run_session(equalized, relaxed_owner,
                                        Opportunity{u, p}, params);
  std::cout << "\nSimulated against a Poisson owner instead: " << metrics.to_string()
            << "\n(guaranteed-output schedules keep their floor no matter the owner)\n";
  return 0;
}
