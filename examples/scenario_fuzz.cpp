// scenario_fuzz — drive generated workloads end to end from the command
// line: draw a seed-deterministic batch of scenarios (every policy, every
// owner process, contract classes, correlated farms), run it through
// sim::BatchRunner, and print the per-owner/per-policy breakdown plus the
// solve-cache behaviour. Any scenario can be exported as a replay record
// and re-run alone — the same text format the conformance suite emits for
// minimized failures (see README "Fuzzing & replaying failures").
//
//   scenario_fuzz --cases=256 --seed=42 --max-u=8192 --farms
//   scenario_fuzz --cases=64 --dump=7          # print scenario #7 as replay text
//   scenario_fuzz --replay=repro.scenario      # run one serialized scenario
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "nowsched.h"

using namespace nowsched;

namespace {

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "scenario_fuzz: cannot open replay file " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const sim::ScenarioSpec spec = sim::scenario_from_replay(buffer.str());

  const auto policy = sim::make_policy(spec);
  const auto owner = sim::make_owner(spec);
  const sim::SessionMetrics metrics =
      sim::run_session(*policy, *owner,
                       Opportunity{spec.lifespan, spec.max_interrupts}, spec.params);
  std::cout << "replayed " << to_string(spec.policy) << " vs " << to_string(spec.owner)
            << " (c=" << spec.params.c << ", U=" << spec.lifespan
            << ", p=" << spec.max_interrupts << ")\n  " << metrics.to_string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, const char* const* argv) {
  const util::Flags flags(argc, argv);

  const std::string replay = flags.get("replay", "");
  if (!replay.empty()) return run_replay(replay);

  const auto cases = static_cast<std::size_t>(flags.get_int("cases", 128));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const bool farms = flags.get_bool("farms", false);
  const long long dump = flags.get_int("dump", -1);

  sim::ScenarioDomain domain;
  domain.max_lifespan = flags.get_int("max-u", 8192);
  domain.max_interrupts = static_cast<int>(flags.get_int("max-p", 6));
  domain.contract_classes = static_cast<std::size_t>(flags.get_int("classes", 6));
  sim::ScenarioGenerator gen(domain, seed);

  if (dump >= 0) {
    std::cout << sim::to_replay_string(gen.at(static_cast<std::uint64_t>(dump)));
    return 0;
  }

  std::vector<sim::ScenarioSpec> specs;
  while (specs.size() < cases) {
    if (farms) {
      for (auto& spec : gen.farm_group(domain.farm_size)) specs.push_back(spec);
    } else {
      specs.push_back(gen.next());
    }
  }
  specs.resize(cases);

  util::ThreadPool pool(static_cast<std::size_t>(flags.get_int("threads", 4)));
  sim::BatchOptions options;
  options.pool = &pool;
  sim::BatchRunner runner(options);
  const sim::BatchResult result = runner.run(specs);

  std::map<std::string, std::pair<std::size_t, Ticks>> by_owner;
  std::map<std::string, std::pair<std::size_t, Ticks>> by_policy;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto& o = by_owner[to_string(specs[i].owner)];
    o.first += 1;
    o.second += result.per_scenario[i].banked_work;
    auto& p = by_policy[to_string(specs[i].policy)];
    p.first += 1;
    p.second += result.per_scenario[i].banked_work;
  }

  std::cout << "scenario_fuzz: " << cases << " generated sessions (seed " << seed
            << (farms ? ", correlated farms" : "") << ")\n";
  std::cout << "aggregate: " << result.aggregate.to_string() << "\n";
  std::cout << "solve cache: " << result.cache.hits << " hits / "
            << result.cache.misses << " misses ("
            << result.cache.hit_rate() * 100.0 << "% hit rate), "
            << result.cache.resident_bytes / 1024 << " KiB resident\n";
  std::cout << "\nby owner process:\n";
  for (const auto& [name, stat] : by_owner) {
    std::cout << "  " << name << ": " << stat.first << " sessions, banked "
              << stat.second << "\n";
  }
  std::cout << "\nby policy:\n";
  for (const auto& [name, stat] : by_policy) {
    std::cout << "  " << name << ": " << stat.first << " sessions, banked "
              << stat.second << "\n";
  }
  std::cout << "\nexport any scenario with --dump=<i>; re-run one with "
               "--replay=<file>.\n";
  return 0;
}
