// Multi-tenant scheduler service: the resident-daemon face of the library.
//
//   ./sched_service --jobs=48 --scenarios=8 --workers=4 --queue=drr
//                   --tenants=3 --quota-mb=4 --skew=4 --seed=7
//
// Mirrors the launcher surface of a scheduler daemon (queue class x cache
// quota x worker count): tenants submit scenario-batch jobs against a
// resident service::SchedulerService, overflow comes back as a backpressure
// status the submitter retries on, and the run ends with the per-tenant
// stats table an operator would read — queue policy, hit rates, p50/p99 job
// latency, and Jain's fairness index over completed scenarios. --skew makes
// tenant 0 offer N times the load of the others, which is what separates
// FIFO (fairness tracks offered load) from DRR (fairness holds anyway).
//
// The exit status is an invariant check, not decoration: every accepted
// future must resolve, and the stats conservation laws must balance.
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "nowsched.h"

using namespace nowsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t jobs = static_cast<std::size_t>(flags.get_int("jobs", 48));
  const std::size_t scenarios =
      static_cast<std::size_t>(flags.get_int("scenarios", 8));
  const std::size_t workers = static_cast<std::size_t>(flags.get_int("workers", 4));
  const std::size_t tenants = static_cast<std::size_t>(flags.get_int("tenants", 3));
  const std::size_t quota_mb =
      static_cast<std::size_t>(flags.get_int("quota-mb", 4));
  const std::size_t skew = static_cast<std::size_t>(flags.get_int("skew", 1));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string queue_name = flags.get("queue", "drr");
  if (jobs == 0 || scenarios == 0 || tenants == 0 || skew == 0) {
    std::cerr << "sched_service: --jobs/--scenarios/--tenants/--skew must be >= 1\n";
    return 2;
  }

  service::ServiceOptions options;
  options.workers = workers;
  try {
    options.queue = service::queue_kind_from_string(queue_name);
  } catch (const std::invalid_argument& e) {
    flags.usage_error("queue", "fifo | drr | fair-share", queue_name);
  }
  options.drr_quantum = static_cast<std::size_t>(flags.get_int("quantum", 8));
  options.max_queued_jobs_per_tenant =
      static_cast<std::size_t>(flags.get_int("tenant-depth", 16));
  options.max_queued_jobs_total =
      static_cast<std::size_t>(flags.get_int("global-depth", 64));

  service::SchedulerService service(options);
  for (std::size_t t = 0; t < tenants; ++t) {
    service.set_tenant_quota("tenant-" + std::to_string(t), quota_mb << 20);
  }

  // dp-optimal scenarios over a few contract classes, so the per-tenant
  // caches see genuine re-use inside their quotas.
  sim::ScenarioDomain domain;
  domain.policies = {sim::PolicyKind::kDpOptimal};
  domain.max_lifespan = 2048;
  domain.contract_classes = 4;
  sim::ScenarioGenerator generator(domain, seed);

  // Tenant 0 offers `skew`x the share of the others (a weighted deal);
  // submission retries on backpressure — the cooperative protocol.
  std::vector<std::future<service::JobResult>> futures;
  futures.reserve(jobs);
  std::size_t rejected_retries = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    const std::size_t slot = j % (tenants + skew - 1);
    const std::size_t t = slot < skew ? 0 : slot - skew + 1;
    const std::string tenant = "tenant-" + std::to_string(t);
    std::vector<sim::ScenarioSpec> specs = generator.batch(scenarios);
    for (;;) {
      service::Submission sub = service.submit(tenant, specs);
      if (sub.accepted()) {
        futures.push_back(std::move(sub.result));
        break;
      }
      if (!service::is_backpressure(sub.status)) {
        std::cerr << "sched_service: submit rejected: "
                  << service::to_string(sub.status) << " (" << sub.reason << ")\n";
        return 1;
      }
      ++rejected_retries;
      if (workers == 0) {
        (void)service.run_next();  // manual mode: make room ourselves
      } else {
        std::this_thread::yield();
      }
    }
  }
  if (workers == 0) service.drain();

  std::uint64_t resolved = 0;
  for (auto& f : futures) {
    const service::JobResult result = f.get();
    if (result.batch.per_scenario.size() != scenarios) {
      std::cerr << "sched_service: job " << result.job_id
                << " returned wrong scenario count\n";
      return 1;
    }
    ++resolved;
  }
  service.shutdown(service::SchedulerService::StopMode::kDrain);

  const service::ServiceStats stats = service.stats();
  std::cout << "queue=" << stats.queue_policy << " workers=" << stats.workers
            << " jobs=" << jobs << " scenarios/job=" << scenarios
            << " quota=" << quota_mb << "MiB skew=" << skew
            << " (retries absorbed: " << rejected_retries << ")\n\n";
  std::cout << "tenant        completed  scenarios  hit-rate   p50 ms    p99 ms\n";
  std::vector<double> completed_share;
  for (const service::TenantStats& t : stats.tenants) {
    completed_share.push_back(static_cast<double>(t.completed_scenarios));
    std::cout << t.tenant << "      " << t.completed_jobs << "        "
              << t.completed_scenarios << "        " << t.cache.hit_rate()
              << "   " << t.latency.p50_ms << "   " << t.latency.p99_ms << "\n";
  }
  std::cout << "\npooled p50/p99: " << stats.latency.p50_ms << " / "
            << stats.latency.p99_ms << " ms; Jain fairness over completed "
            << "scenarios: " << service::jains_fairness(completed_share) << "\n";

  // Invariant audit — the exit status the smoke test keys on.
  if (resolved != futures.size() || stats.completed_jobs != resolved ||
      stats.failed_jobs != 0 || stats.cancelled_jobs != 0 ||
      stats.queued_jobs != 0 || stats.inflight_jobs != 0 ||
      stats.submitted_jobs != stats.accepted_jobs + stats.rejected_jobs) {
    std::cerr << "sched_service: stats conservation violated\n";
    return 1;
  }
  std::cout << "all " << resolved << " jobs resolved; conservation laws hold\n";
  return 0;
}
