// Multi-tenant scheduler service: the resident-daemon face of the library.
//
//   ./sched_service --jobs=48 --scenarios=8 --workers=4 --queue=drr
//                   --tenants=3 --quota-mb=4 --skew=4 --seed=7
//
// Mirrors the launcher surface of a scheduler daemon (queue class x cache
// quota x worker count): tenants submit scenario-batch jobs through the
// JobTicket handle API against a resident service::SchedulerService,
// overflow comes back as a backpressure status the submitter retries on,
// and the run ends with the same `nowsched-stats v1` snapshot the daemon's
// Stats RPC serves — one format for both surfaces — plus the operator
// summary lines (pooled latency, Jain's fairness). --skew makes tenant 0
// offer N times the load of the others, which is what separates FIFO
// (fairness tracks offered load) from DRR (fairness holds anyway).
//
// The exit status is an invariant check, not decoration: every accepted
// ticket must fetch exactly once as kDone, the stats conservation laws must
// balance, and the stats text must round-trip its strict parser.
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "nowsched.h"

using namespace nowsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t jobs = static_cast<std::size_t>(flags.get_int("jobs", 48));
  const std::size_t scenarios =
      static_cast<std::size_t>(flags.get_int("scenarios", 8));
  const std::size_t workers = static_cast<std::size_t>(flags.get_int("workers", 4));
  const std::size_t tenants = static_cast<std::size_t>(flags.get_int("tenants", 3));
  const std::size_t quota_mb =
      static_cast<std::size_t>(flags.get_int("quota-mb", 4));
  const std::size_t skew = static_cast<std::size_t>(flags.get_int("skew", 1));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string queue_name = flags.get("queue", "drr");
  if (jobs == 0 || scenarios == 0 || tenants == 0 || skew == 0) {
    std::cerr << "sched_service: --jobs/--scenarios/--tenants/--skew must be >= 1\n";
    return 2;
  }

  service::ServiceOptions options;
  options.workers = workers;
  try {
    options.queue = service::queue_kind_from_string(queue_name);
  } catch (const std::invalid_argument& e) {
    flags.usage_error("queue", "fifo | drr | fair-share", queue_name);
  }
  options.drr_quantum = static_cast<std::size_t>(flags.get_int("quantum", 8));
  options.max_queued_jobs_per_tenant =
      static_cast<std::size_t>(flags.get_int("tenant-depth", 16));
  options.max_queued_jobs_total =
      static_cast<std::size_t>(flags.get_int("global-depth", 64));

  service::SchedulerService service(options);
  for (std::size_t t = 0; t < tenants; ++t) {
    service.set_tenant_quota("tenant-" + std::to_string(t), quota_mb << 20);
  }

  // dp-optimal scenarios over a few contract classes, so the per-tenant
  // caches see genuine re-use inside their quotas.
  sim::ScenarioDomain domain;
  domain.policies = {sim::PolicyKind::kDpOptimal};
  domain.max_lifespan = 2048;
  domain.contract_classes = 4;
  sim::ScenarioGenerator generator(domain, seed);

  // Tenant 0 offers `skew`x the share of the others (a weighted deal);
  // submission retries on backpressure — the cooperative protocol.
  std::vector<service::JobTicket> tickets;
  tickets.reserve(jobs);
  std::size_t rejected_retries = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    const std::size_t slot = j % (tenants + skew - 1);
    const std::size_t t = slot < skew ? 0 : slot - skew + 1;
    const std::string tenant = "tenant-" + std::to_string(t);
    std::vector<sim::ScenarioSpec> specs = generator.batch(scenarios);
    for (;;) {
      service::TicketSubmission sub = service.submit_job(tenant, specs);
      if (sub.accepted()) {
        tickets.push_back(std::move(sub.ticket));
        break;
      }
      if (!service::is_backpressure(sub.status)) {
        std::cerr << "sched_service: submit rejected: "
                  << service::to_string(sub.status) << " (" << sub.reason << ")\n";
        return 1;
      }
      ++rejected_retries;
      if (workers == 0) {
        (void)service.run_next();  // manual mode: make room ourselves
      } else {
        std::this_thread::yield();
      }
    }
  }
  if (workers == 0) service.drain();

  std::uint64_t resolved = 0;
  for (const service::JobTicket& ticket : tickets) {
    const service::FetchOutcome outcome = service.fetch_result(ticket.id);
    if (!outcome.done()) {
      std::cerr << "sched_service: job " << ticket.id << " ended "
                << service::to_string(outcome.state) << " (" << outcome.error
                << ")\n";
      return 1;
    }
    if (outcome.result.batch.per_scenario.size() != scenarios) {
      std::cerr << "sched_service: job " << ticket.id
                << " returned wrong scenario count\n";
      return 1;
    }
    // Exactly-once: the fetch consumed the ticket.
    if (service.job_state(ticket.id) != service::JobState::kUnknown) {
      std::cerr << "sched_service: job " << ticket.id
                << " still known after its result was fetched\n";
      return 1;
    }
    ++resolved;
  }
  service.shutdown(service::SchedulerService::StopMode::kDrain);

  const service::ServiceStats stats = service.stats();
  std::cout << "jobs=" << jobs << " scenarios/job=" << scenarios
            << " quota=" << quota_mb << "MiB skew=" << skew
            << " (retries absorbed: " << rejected_retries << ")\n\n";

  // The same versioned snapshot the daemon's Stats RPC serves.
  const std::string stats_text = service::to_stats_string(stats);
  std::cout << stats_text << "\n";

  std::vector<double> completed_share;
  for (const service::TenantStats& t : stats.tenants) {
    completed_share.push_back(static_cast<double>(t.completed_scenarios));
  }
  std::cout << "pooled p50/p99: " << stats.latency.p50_ms << " / "
            << stats.latency.p99_ms << " ms; Jain fairness over completed "
            << "scenarios: " << service::jains_fairness(completed_share) << "\n";

  // Invariant audit — the exit status the smoke test keys on.
  bool round_trips = false;
  try {
    round_trips =
        service::to_stats_string(service::stats_from_string(stats_text)) ==
        stats_text;
  } catch (const std::invalid_argument&) {
  }
  if (!round_trips) {
    std::cerr << "sched_service: nowsched-stats v1 round-trip failed\n";
    return 1;
  }
  if (resolved != tickets.size() || stats.completed_jobs != resolved ||
      stats.failed_jobs != 0 || stats.cancelled_jobs != 0 ||
      stats.queued_jobs != 0 || stats.inflight_jobs != 0 ||
      stats.submitted_jobs != stats.accepted_jobs + stats.rejected_jobs) {
    std::cerr << "sched_service: stats conservation violated\n";
    return 1;
  }
  std::cout << "all " << resolved << " jobs resolved; conservation laws hold\n";
  return 0;
}
