// The nowsched scheduler daemon: a resident SchedulerService behind the
// nowsched-rpc v1 Unix-domain socket, plus the client verbs that talk to it.
//
// Serve (default): run the daemon until SIGINT/SIGTERM or a Shutdown RPC.
//   ./nowsched_daemon --socket=/tmp/nowsched.sock --workers=4 --queue=drr
//                     [--shared-store-dir=DIR [--store-readonly]]
//
// Client: submit a workload to a running daemon, fetch every result, audit.
//   ./nowsched_daemon --client --socket=/tmp/nowsched.sock --tenant=alpha
//                     --jobs=16 --scenarios=4 --seed=7
//
// Stats / shutdown verbs against a running daemon:
//   ./nowsched_daemon --stats    --socket=/tmp/nowsched.sock
//   ./nowsched_daemon --shutdown --socket=/tmp/nowsched.sock [--cancel-queued]
//
// Selfdrive: the whole stack in one process — daemon thread + N concurrent
// client connections through the real socket — finishing with a
// conservation-law audit as the exit status. This is the ctest smoke and
// the shape of the CI integration job.
//   ./nowsched_daemon --selfdrive --clients=3 --jobs=8 --scenarios=4
//
// Exit status: 0 = every accepted job resolved and the stats conservation
// laws balance; 1 = an invariant broke; 2 = bad usage.
#include <csignal>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "nowsched.h"

using namespace nowsched;

namespace {

rpc::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();  // atomic store + pipe write
}

service::ServiceOptions service_options_from_flags(const util::Flags& flags) {
  service::ServiceOptions options;
  options.workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  const std::string queue_name = flags.get("queue", "drr");
  try {
    options.queue = service::queue_kind_from_string(queue_name);
  } catch (const std::invalid_argument&) {
    flags.usage_error("queue", "fifo | drr | fair-share", queue_name);
  }
  options.drr_quantum = static_cast<std::size_t>(flags.get_int("quantum", 8));
  options.max_queued_jobs_per_tenant =
      static_cast<std::size_t>(flags.get_int("tenant-depth", 16));
  options.max_queued_jobs_total =
      static_cast<std::size_t>(flags.get_int("global-depth", 64));
  options.shared_store_dir = flags.get("shared-store-dir", "");
  options.shared_store_readonly = flags.get_bool("store-readonly", false);
  return options;
}

/// One client session: submit `jobs` batches, fetch every result (wait=1),
/// spot-check the exactly-once contract, and return the resolved count.
/// Throws on any protocol error; returns SIZE_MAX on a verification failure
/// already reported to stderr.
std::size_t drive_client(const std::string& socket_path, const std::string& tenant,
                         std::size_t jobs, std::size_t scenarios,
                         std::uint64_t seed) {
  sim::ScenarioDomain domain;
  domain.policies = {sim::PolicyKind::kDpOptimal};
  domain.max_lifespan = 1024;
  domain.contract_classes = 3;
  sim::ScenarioGenerator generator(domain, seed);

  rpc::Client client(socket_path);
  std::vector<service::JobId> tickets;
  tickets.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    const std::vector<sim::ScenarioSpec> specs = generator.batch(scenarios);
    for (;;) {
      const rpc::SubmitReply reply = client.submit_batch(tenant, specs);
      if (reply.status == service::SubmitStatus::kAccepted) {
        tickets.push_back(reply.job_id);
        break;
      }
      if (!service::is_backpressure(reply.status)) {
        std::cerr << "nowsched_daemon: submit rejected: "
                  << service::to_string(reply.status) << " (" << reply.reason
                  << ")\n";
        return static_cast<std::size_t>(-1);
      }
      // Cooperative backpressure: results are ready to collect — fetch one
      // to free queue room, then retry the submit.
      if (!tickets.empty()) {
        const rpc::JobResultReply result = client.fetch_result(tickets.front());
        if (result.state != service::JobState::kDone) {
          std::cerr << "nowsched_daemon: job " << tickets.front()
                    << " ended " << service::to_string(result.state) << "\n";
          return static_cast<std::size_t>(-1);
        }
        tickets.erase(tickets.begin());
      }
    }
  }

  std::size_t resolved = jobs - tickets.size();
  for (const service::JobId id : tickets) {
    const rpc::JobResultReply result = client.fetch_result(id, /*wait=*/true);
    if (result.state != service::JobState::kDone) {
      std::cerr << "nowsched_daemon: job " << id << " ended "
                << service::to_string(result.state) << " (" << result.error
                << ")\n";
      return static_cast<std::size_t>(-1);
    }
    if (result.per_scenario.size() != scenarios) {
      std::cerr << "nowsched_daemon: job " << id
                << " returned wrong scenario count\n";
      return static_cast<std::size_t>(-1);
    }
    // Exactly-once across the wire: the fetch consumed the ticket.
    if (client.job_state(id) != service::JobState::kUnknown) {
      std::cerr << "nowsched_daemon: job " << id
                << " still known after its result was fetched\n";
      return static_cast<std::size_t>(-1);
    }
    ++resolved;
  }
  return resolved;
}

/// Global conservation-law audit over a daemon stats snapshot.
bool audit(const service::ServiceStats& stats) {
  const bool admission_ok =
      stats.submitted_jobs == stats.accepted_jobs + stats.rejected_jobs;
  const bool outcome_ok =
      stats.accepted_jobs == stats.completed_jobs + stats.failed_jobs +
                                 stats.cancelled_jobs + stats.queued_jobs +
                                 stats.inflight_jobs;
  if (!admission_ok || !outcome_ok) {
    std::cerr << "nowsched_daemon: stats conservation violated\n";
    return false;
  }
  return true;
}

int run_serve(const util::Flags& flags, const std::string& socket_path) {
  service::SchedulerService service(service_options_from_flags(flags));
  rpc::Server server(service, {socket_path, 16});
  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::cout << "nowsched_daemon: serving on " << socket_path << std::endl;
  server.serve();
  g_server = nullptr;
  std::cout << "nowsched_daemon: stopped" << std::endl;
  return 0;
}

int run_client(const util::Flags& flags, const std::string& socket_path) {
  const std::string tenant = flags.get("tenant", "tenant-0");
  const std::size_t jobs = static_cast<std::size_t>(flags.get_int("jobs", 8));
  const std::size_t scenarios =
      static_cast<std::size_t>(flags.get_int("scenarios", 4));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::size_t resolved =
      drive_client(socket_path, tenant, jobs, scenarios, seed);
  if (resolved != jobs) return 1;
  rpc::Client client(socket_path);
  if (!audit(client.stats())) return 1;
  std::cout << "nowsched_daemon: " << resolved << " jobs resolved for '"
            << tenant << "'; conservation laws hold\n";
  return 0;
}

int run_selfdrive(const util::Flags& flags, const std::string& socket_path) {
  const std::size_t clients = static_cast<std::size_t>(flags.get_int("clients", 3));
  const std::size_t jobs = static_cast<std::size_t>(flags.get_int("jobs", 8));
  const std::size_t scenarios =
      static_cast<std::size_t>(flags.get_int("scenarios", 4));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  if (clients == 0) {
    std::cerr << "nowsched_daemon: --clients must be >= 1\n";
    return 2;
  }

  service::SchedulerService service(service_options_from_flags(flags));
  rpc::Server server(service, {socket_path, 16});
  std::thread serve_thread([&server] { server.serve(); });

  std::vector<std::size_t> resolved(clients, 0);
  std::vector<std::thread> drivers;
  drivers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      resolved[c] = drive_client(socket_path, "tenant-" + std::to_string(c),
                                 jobs, scenarios, seed + c);
    });
  }
  for (std::thread& t : drivers) t.join();

  // Stats through the wire, then an RPC-initiated shutdown: the reply must
  // arrive before the daemon exits its loop.
  int rc = 0;
  service::ServiceStats stats;
  {
    rpc::Client control(socket_path);
    stats = control.stats();
    control.shutdown_server(service::SchedulerService::StopMode::kDrain);
  }
  serve_thread.join();

  for (std::size_t c = 0; c < clients; ++c) {
    if (resolved[c] != jobs) {
      std::cerr << "nowsched_daemon: client " << c << " resolved " << resolved[c]
                << "/" << jobs << " jobs\n";
      rc = 1;
    }
  }
  if (stats.completed_jobs != clients * jobs || !audit(stats)) rc = 1;
  if (rc == 0) {
    std::cout << "nowsched_daemon: " << clients << " clients x " << jobs
              << " jobs through " << socket_path
              << "; conservation laws hold\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::string socket_path =
      flags.get("socket", "/tmp/nowsched-" + std::to_string(::getpid()) + ".sock");

  try {
    if (flags.get_bool("selfdrive", false)) return run_selfdrive(flags, socket_path);
    if (flags.get_bool("client", false)) return run_client(flags, socket_path);
    if (flags.get_bool("stats", false)) {
      rpc::Client client(socket_path);
      std::cout << client.stats_text();
      return 0;
    }
    if (flags.get_bool("shutdown", false)) {
      rpc::Client client(socket_path);
      client.shutdown_server(flags.get_bool("cancel-queued", false)
                                 ? service::SchedulerService::StopMode::kCancelQueued
                                 : service::SchedulerService::StopMode::kDrain);
      return 0;
    }
    return run_serve(flags, socket_path);
  } catch (const std::exception& e) {
    std::cerr << "nowsched_daemon: " << e.what() << "\n";
    return 1;
  }
}
