// cache_bake — pre-bakes a persistent solve-table store and verifies it.
//
// The warm-start workflow (README "Warm-starting the service"):
//
//   1. BAKE:   cache_bake --store=DIR --p=8 --u=4096 --keys=16 --step=512
//              solves the hot key grid once and publishes each table as a
//              content-addressed `nowsched-table v1` file (build-once:
//              re-running skips keys already present).
//   2. CHECK:  cache_bake --store=DIR --check [--min-speedup=X]
//              re-derives the same grid, validates every file's full format,
//              compares each mapped table FIELD-FOR-FIELD against a fresh
//              in-process solve (the cross-process bit-identity guarantee),
//              and times mapped loads against fresh solves. Exits nonzero on
//              any missing/corrupt/mismatched table, or when the measured
//              warm-start speedup falls below --min-speedup.
//   3. SERVE:  point ServiceOptions::shared_store_dir (or
//              SolveCache::Options::store) at DIR — every process on the
//              host mounts the warm store and skips the solves entirely.
//
// The nightly CI warm-start job is exactly steps 1–2 plus a bench rerun.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "nowsched.h"

namespace {

using nowsched::Ticks;
using nowsched::solver::SolveKey;
using nowsched::solver::SolveRequest;

struct GridFlags {
  int max_p;
  Ticks base_u;
  Ticks step;
  int keys;
  Ticks c;
};

/// The hot key grid — MUST derive identically in bake and check runs, so
/// both sides read it from the same flags.
std::vector<SolveRequest> hot_keys(const GridFlags& grid) {
  std::vector<SolveRequest> requests;
  requests.reserve(static_cast<std::size_t>(grid.keys));
  for (int k = 0; k < grid.keys; ++k) {
    SolveRequest req;
    req.max_p = grid.max_p;
    req.max_lifespan = grid.base_u + static_cast<Ticks>(k) * grid.step;
    req.params.c = grid.c;
    requests.push_back(req);
  }
  return requests;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

int bake(nowsched::solver::MappedTableStore& store,
         const std::vector<SolveRequest>& requests,
         nowsched::util::ThreadPool* pool) {
  int baked = 0;
  int skipped = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const SolveRequest& req : requests) {
    const SolveKey key = nowsched::solver::canonical_key(req);
    if (store.load(key) != nullptr) {
      ++skipped;  // build-once: already present and valid
      continue;
    }
    const auto table = nowsched::solver::solve_shared(req, pool);
    if (!store.store(key, table)) {
      std::fprintf(stderr, "cache_bake: failed to persist %s\n",
                   store.path_for(key).c_str());
      return 1;
    }
    ++baked;
  }
  const auto stats = store.stats();
  std::printf(
      "baked %d table(s), skipped %d already present, %.2fs; store now holds "
      "%zu entr%s (%.1f MiB)\n",
      baked, skipped, seconds_since(start), stats.entries,
      stats.entries == 1 ? "y" : "ies",
      static_cast<double>(stats.bytes) / (1024.0 * 1024.0));
  return 0;
}

int check(nowsched::solver::MappedTableStore& store,
          const std::vector<SolveRequest>& requests,
          nowsched::util::ThreadPool* pool, double min_speedup) {
  int defects = 0;
  double solve_seconds = 0.0;
  double load_seconds = 0.0;
  for (const SolveRequest& req : requests) {
    const SolveKey key = nowsched::solver::canonical_key(req);
    const std::string path = store.path_for(key);

    const std::string verdict =
        nowsched::solver::MappedTableStore::validate_file(path, &key);
    if (!verdict.empty()) {
      std::fprintf(stderr, "cache_bake: %s: %s\n", path.c_str(),
                   verdict.c_str());
      ++defects;
      continue;
    }

    auto load_start = std::chrono::steady_clock::now();
    const auto mapped = store.load(key);
    load_seconds += seconds_since(load_start);
    if (mapped == nullptr) {
      std::fprintf(stderr, "cache_bake: %s: load failed after validation\n",
                   path.c_str());
      ++defects;
      continue;
    }

    auto solve_start = std::chrono::steady_clock::now();
    const auto solved = nowsched::solver::solve_shared(req, pool);
    solve_seconds += seconds_since(solve_start);

    // Field-for-field: the mapped table must reproduce the fresh solve
    // exactly — same dims, same parameters, same value at every (p, L).
    bool mismatch = mapped->max_interrupts() != solved->max_interrupts() ||
                    mapped->max_lifespan() != solved->max_lifespan() ||
                    mapped->params().c != solved->params().c;
    if (!mismatch) {
      for (int p = 0; p <= solved->max_interrupts() && !mismatch; ++p) {
        for (Ticks l = 0; l <= solved->max_lifespan(); ++l) {
          if (mapped->value(p, l) != solved->value(p, l)) {
            std::fprintf(stderr,
                         "cache_bake: %s: W(%d)[%lld] is %lld mapped vs %lld "
                         "solved\n",
                         path.c_str(), p, static_cast<long long>(l),
                         static_cast<long long>(mapped->value(p, l)),
                         static_cast<long long>(solved->value(p, l)));
            mismatch = true;
            break;
          }
        }
      }
    }
    if (mismatch) ++defects;
  }

  if (defects > 0) {
    std::fprintf(stderr, "cache_bake: %d defective table(s)\n", defects);
    return 1;
  }
  const double speedup =
      load_seconds > 0.0 ? solve_seconds / load_seconds : 0.0;
  std::printf(
      "checked %zu table(s): all bit-identical to fresh solves; fresh solves "
      "%.3fs, mapped loads %.3fs (%.0fx warm-start speedup)\n",
      requests.size(), solve_seconds, load_seconds, speedup);
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "cache_bake: warm-start speedup %.1fx is below the required "
                 "%.1fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const nowsched::util::Flags flags(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "usage: %s --store=DIR [--check] [grid flags]\n"
        "  --store=DIR        store directory (created when baking)\n"
        "  --check            verify instead of bake: format + bit-identity\n"
        "                     vs fresh solves + warm-start speedup\n"
        "  --min-speedup=X    (check) fail when solve/load speedup < X\n"
        "  --p=N --u=N        grid: max interrupts / base lifespan (8, 4096)\n"
        "  --keys=N --step=N  grid: key count / lifespan stride (16, 512)\n"
        "  --c=N              checkpoint cost (16)\n"
        "  --threads=N        solver threads (default: hardware)\n",
        flags.program().c_str());
    return 0;
  }

  const std::string dir = flags.get("store", "");
  if (dir.empty()) {
    std::fprintf(stderr, "%s: --store=DIR is required (see --help)\n",
                 flags.program().c_str());
    return 2;
  }
  GridFlags grid;
  grid.max_p = static_cast<int>(flags.get_int("p", 8));
  grid.base_u = flags.get_int("u", 4096);
  grid.step = flags.get_int("step", 512);
  grid.keys = static_cast<int>(flags.get_int("keys", 16));
  grid.c = flags.get_int("c", 16);
  if (grid.keys < 1) {
    std::fprintf(stderr, "%s: --keys must be >= 1\n", flags.program().c_str());
    return 2;
  }

  const auto thread_count = flags.get_int("threads", 0);
  // 0 → hardware concurrency (ThreadPool's own default).
  nowsched::util::ThreadPool pool(
      thread_count > 0 ? static_cast<std::size_t>(thread_count) : 0);

  try {
    nowsched::solver::MappedTableStore store({dir});
    const std::vector<SolveRequest> requests = hot_keys(grid);
    return flags.get_bool("check", false)
               ? check(store, requests, &pool,
                       flags.get_double("min-speedup", 0.0))
               : bake(store, requests, &pool);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", flags.program().c_str(), e.what());
    return 1;
  }
}
