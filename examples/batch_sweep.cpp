// Batch sweep: run a whole population of cycle-stealing sessions at once.
//
//   ./batch_sweep --sessions=512 --keys=8 --c=32 --u=4096 --p=3 --threads=4
//
// A production scheduler does not solve one contract at a time — it serves
// thousands of sessions drawn from a handful of contract classes. This
// example builds such a mix, runs it twice through sim::BatchRunner (naive
// per-session re-solving vs the sharded solve cache), and prints the
// aggregate work banked, the cache hit rate, and the throughput difference.
// The aggregates of the two runs are identical by the determinism contract.
#include <chrono>
#include <iostream>
#include <vector>

#include "nowsched.h"

using namespace nowsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const std::size_t sessions =
      static_cast<std::size_t>(flags.get_int("sessions", 512));
  const std::size_t keys = static_cast<std::size_t>(flags.get_int("keys", 8));
  const Params params{flags.get_int("c", 32)};
  const Ticks base_u = flags.get_int("u", 4096);
  const int p = static_cast<int>(flags.get_int("p", 3));
  const std::size_t threads = static_cast<std::size_t>(flags.get_int("threads", 4));

  // The scenario mix: dp-optimal policies over `keys` contract classes, so
  // sessions sharing a class share one canonical W(p)[L] solve.
  std::vector<sim::ScenarioSpec> specs;
  specs.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    sim::ScenarioSpec spec;
    spec.policy = sim::PolicyKind::kDpOptimal;
    spec.owner = sim::OwnerKind::kPoisson;
    spec.owner_a = 3000.0;
    spec.params = params;
    spec.lifespan = base_u + static_cast<Ticks>(i % keys) * 512;
    spec.max_interrupts = p;
    spec.seed = 0xB00 + i;
    specs.push_back(spec);
  }

  util::ThreadPool pool(threads);
  auto timed_run = [&](bool cached) {
    sim::BatchOptions options;
    options.pool = &pool;
    options.cache_enabled = cached;
    sim::BatchRunner runner(options);
    const auto start = std::chrono::steady_clock::now();
    const sim::BatchResult result = runner.run(specs);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::cout << (cached ? "cached" : "naive ") << ": " << sessions << " sessions in "
              << ms << " ms (" << static_cast<double>(sessions) / (ms / 1000.0)
              << " sessions/s), banked " << result.aggregate.banked_work
              << " ticks, hit rate " << result.cache.hit_rate() << "\n";
    return result.aggregate.banked_work;
  };

  std::cout << sessions << " dp-optimal sessions over " << keys
            << " contract classes, c = " << params.c << ", p = " << p << ", "
            << threads << " threads\n";
  const Ticks naive = timed_run(false);
  const Ticks cached = timed_run(true);
  if (naive != cached) {
    std::cerr << "determinism contract broken: aggregates differ\n";
    return 1;
  }
  std::cout << "aggregates identical — cache changes who solves, never the result\n";
  return 0;
}
