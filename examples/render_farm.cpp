// Overnight render farm on borrowed workstations — the data-parallel
// workload the paper's introduction motivates.
//
// A studio borrows colleagues' machines overnight to render animation
// frames. Each machine has a draconian contract: if its owner comes back
// (laptop unplugged, console reclaimed), every frame in flight is lost.
// Frames are indivisible tasks of varying cost; each period ships a batch of
// frames to the workstation and collects the results (setup cost c per
// round trip).
//
//   ./render_farm --stations=6 --frames=4000 --seed=1
//
// Compares the naive "send half the night's work at once" plan against the
// paper's guidelines across identical owner behaviour (recorded traces).
#include <iostream>
#include <memory>

#include "nowsched.h"

using namespace nowsched;

namespace {

struct PlanResult {
  std::string name;
  sim::FarmResult farm;
};

PlanResult run_plan(const std::string& name, const PolicyPtr& policy,
                    std::size_t stations, std::size_t frames, std::uint64_t seed,
                    const Params& params) {
  // Heterogeneous contracts: desktops (long lifespans, patient owners) and
  // laptops (short lifespans, twitchy owners). Owner processes are seeded
  // identically across plans so the comparison is apples-to-apples.
  std::vector<sim::WorkstationConfig> cfgs;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < stations; ++i) {
    sim::WorkstationConfig cfg;
    const bool laptop = (i % 2 == 1);
    cfg.name = (laptop ? "laptop-" : "desktop-") + std::to_string(i);
    cfg.params = params;
    cfg.opportunity =
        Opportunity{laptop ? 16 * 2048 : 16 * 8192, laptop ? 4 : 2};
    cfg.policy = policy;
    cfg.owner = std::make_shared<adversary::ParetoSessionAdversary>(
        laptop ? 4000.0 : 20000.0, 1.3, rng.next());
    cfg.start_time = static_cast<Ticks>(rng.next_below(500));  // staggered logins
    cfgs.push_back(std::move(cfg));
  }
  util::Rng task_rng(seed ^ 0xABCD);
  auto bag = sim::TaskBag::random(frames, 40, 360, task_rng);
  return {name, sim::run_farm(cfgs, bag)};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const Params params{flags.get_int("c", 16)};
  const auto stations = static_cast<std::size_t>(flags.get_int("stations", 6));
  const auto frames = static_cast<std::size_t>(flags.get_int("frames", 4000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::cout << "Render farm: " << stations << " borrowed workstations, " << frames
            << " frames (seed " << seed << ")\n\n";

  std::vector<PlanResult> results;
  results.push_back(run_plan("single-block (ship everything at once)",
                             std::make_shared<SingleBlockPolicy>(), stations, frames,
                             seed, params));
  results.push_back(run_plan("fixed-chunk 16c (folk wisdom)",
                             std::make_shared<FixedChunkPolicy>(16.0), stations, frames,
                             seed, params));
  results.push_back(run_plan("adaptive guideline (§3.2)",
                             std::make_shared<AdaptiveGuidelinePolicy>(), stations,
                             frames, seed, params));
  results.push_back(run_plan("equalized guideline (§4.2)",
                             std::make_shared<EqualizedGuidelinePolicy>(), stations,
                             frames, seed, params));

  util::Table out({"plan", "frames done", "frame work", "lost work", "comm", "frag",
                   "interrupts"},
                  {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                   util::Align::kRight, util::Align::kRight, util::Align::kRight,
                   util::Align::kRight});
  for (const auto& r : results) {
    const auto& m = r.farm.aggregate;
    out.add_row({r.name, util::Table::fmt(static_cast<long long>(m.tasks_completed)),
                 util::Table::fmt(static_cast<long long>(m.task_work)),
                 util::Table::fmt(static_cast<long long>(m.lost_work)),
                 util::Table::fmt(static_cast<long long>(m.comm_overhead)),
                 util::Table::fmt(static_cast<long long>(m.fragmentation)),
                 util::Table::fmt(static_cast<long long>(m.interrupts))});
  }
  out.print(std::cout, "Overnight results (ticks of frame work banked)");

  std::cout << "\nPer-workstation detail for the equalized plan:\n";
  const auto& eq = results.back().farm;
  for (std::size_t i = 0; i < eq.per_workstation.size(); ++i) {
    std::cout << "  station " << i << ": " << eq.per_workstation[i].to_string() << "\n";
  }
  std::cout << "\nThe guideline plans keep nearly all their completed-period work\n"
               "under owner churn; the single-block plan forfeits every machine\n"
               "whose owner returned before dawn.\n";
  return 0;
}
