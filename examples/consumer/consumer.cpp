// The 10-line find_package(nowsched) smoke consumer: solve a small game,
// run a tiny batch, print one number from each. Exit 0 == the installed
// package links and works.
#include <iostream>

#include "nowsched.h"

int main() {
  using namespace nowsched;
  const auto table = solver::solve_shared({2, 1024, Params{16}});
  sim::BatchRunner runner;
  sim::ScenarioSpec spec;  // field init, immune to ScenarioSpec growing slots
  spec.policy = sim::PolicyKind::kDpOptimal;
  spec.owner = sim::OwnerKind::kPoisson;
  spec.owner_a = 500.0;
  spec.params = Params{16};
  spec.lifespan = 1024;
  spec.max_interrupts = 2;
  spec.seed = 42;
  const auto result = runner.run({spec});
  std::cout << "W(2)[1024] = " << table->value(2, 1024) << ", batch banked "
            << result.aggregate.banked_work << "\n";
  return result.aggregate.banked_work > 0 ? 0 : 1;
}
