// The 10-line find_package(nowsched) smoke consumer: solve a small game,
// run a tiny batch, print one number from each. Exit 0 == the installed
// package links and works.
#include <iostream>

#include "nowsched.h"

int main() {
  using namespace nowsched;
  const auto table = solver::solve_shared({2, 1024, Params{16}});
  sim::BatchRunner runner;
  const auto result = runner.run({{sim::PolicyKind::kDpOptimal,
                                   sim::OwnerKind::kPoisson, 500.0, 1.5, Params{16},
                                   1024, 2, 42}});
  std::cout << "W(2)[1024] = " << table->value(2, 1024) << ", batch banked "
            << result.aggregate.banked_work << "\n";
  return result.aggregate.banked_work > 0 ? 0 : 1;
}
