// nowsched — command-line driver over the whole library.
//
//   nowsched_cli schedule --u=32768 --p=2 --c=16 --policy=equalized
//   nowsched_cli solve    --u=32768 --p=3 --c=16
//   nowsched_cli evaluate --u=32768 --p=2 --policy=adaptive
//   nowsched_cli simulate --u=32768 --p=2 --policy=equalized --owner=pareto --trials=10
//   nowsched_cli sweep    --p=2 --policy=equalized --csv=sweep.csv
//
// Policies: equalized | adaptive | adaptive-rationalized | nonadaptive |
//           single-block | fixed-chunk:<mult> | geometric
// Owners:   poisson:<mean-gap> | pareto:<scale> | uniform:<prob> | none
#include <cmath>
#include <iostream>
#include <memory>

#include "nowsched.h"

using namespace nowsched;

namespace {

PolicyPtr make_policy(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const double arg = colon == std::string::npos
                         ? 0.0
                         : std::strtod(spec.c_str() + colon + 1, nullptr);
  if (kind == "equalized") return std::make_shared<EqualizedGuidelinePolicy>();
  if (kind == "adaptive") return std::make_shared<AdaptiveGuidelinePolicy>();
  if (kind == "adaptive-rationalized") {
    return std::make_shared<AdaptiveGuidelinePolicy>(PivotRule::kRationalized);
  }
  if (kind == "nonadaptive") return std::make_shared<NonAdaptiveGuidelinePolicy>();
  if (kind == "single-block") return std::make_shared<SingleBlockPolicy>();
  if (kind == "fixed-chunk") {
    return std::make_shared<FixedChunkPolicy>(arg > 0.0 ? arg : 8.0);
  }
  if (kind == "geometric") return std::make_shared<GeometricPolicy>(2.0, 2.0);
  throw std::invalid_argument("unknown policy '" + spec + "'");
}

std::unique_ptr<adversary::Adversary> make_owner(const std::string& spec, Ticks u,
                                                 std::uint64_t seed) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const double arg = colon == std::string::npos
                         ? 0.0
                         : std::strtod(spec.c_str() + colon + 1, nullptr);
  if (kind == "none") return std::make_unique<adversary::NoOpAdversary>();
  if (kind == "poisson") {
    return std::make_unique<adversary::PoissonAdversary>(
        arg > 0.0 ? arg : static_cast<double>(u) / 4.0, seed);
  }
  if (kind == "pareto") {
    return std::make_unique<adversary::ParetoSessionAdversary>(
        arg > 0.0 ? arg : static_cast<double>(u) / 8.0, 1.3, seed);
  }
  if (kind == "uniform") {
    return std::make_unique<adversary::UniformEpisodeAdversary>(
        arg > 0.0 ? arg : 0.4, seed);
  }
  throw std::invalid_argument("unknown owner '" + spec + "'");
}

int cmd_schedule(const util::Flags& flags, Ticks u, int p, const Params& params) {
  const auto policy = make_policy(flags.get("policy", "equalized"));
  const auto episode = policy->episode(u, p, params);
  std::cout << policy->name() << " episode for (U=" << u << ", p=" << p
            << ", c=" << params.c << "):\n  " << episode.to_string() << "\n  "
            << analyze(episode, params).to_string() << "\n";
  if (p >= 1) {
    std::cout << "  p=1 kill-option spread (early periods): "
              << equalization_spread_p1(episode, u, params) << " ticks\n";
  }
  return 0;
}

int cmd_solve(const util::Flags& flags, Ticks u, int p, const Params& params) {
  const auto table = solver::solve_fast(p, u, params);
  util::Table out({"q", "W(q)[U]", "deficit", "deficit/sqrt(2cU)", "a_q exact"});
  const double scale =
      std::sqrt(2.0 * static_cast<double>(params.c) * static_cast<double>(u));
  for (int q = 0; q <= p; ++q) {
    const Ticks w = table.value(q, u);
    out.add_row({util::Table::fmt(static_cast<long long>(q)),
                 util::Table::fmt(static_cast<long long>(w)),
                 util::Table::fmt(static_cast<long long>(u - w)),
                 util::Table::fmt(static_cast<double>(u - w) / scale, 4),
                 util::Table::fmt(bounds::optimal_deficit_coefficient(q), 4)});
  }
  out.print(std::cout, "exact guaranteed-work optimum, U=" + std::to_string(u));
  std::cout << "optimal first episode: "
            << solver::extract_episode(table, p, u).to_string() << "\n";
  (void)flags;
  return 0;
}

int cmd_evaluate(const util::Flags& flags, Ticks u, int p, const Params& params) {
  const auto policy = make_policy(flags.get("policy", "equalized"));
  const auto br = solver::best_response(*policy, u, p, params);
  std::cout << policy->name() << " guarantees " << br.value << " of " << u
            << " ticks (U-deficit " << (u - br.value) << ")\n"
            << "worst-case owner play:\n";
  for (const auto& move : br.moves) {
    std::cout << "  residual " << move.episode_lifespan << ", q="
              << move.interrupts_left << ": ";
    if (move.killed) {
      std::cout << "kill period " << (*move.killed + 1) << " (banked " << move.banked
                << ")\n";
    } else {
      std::cout << "episode completes (banked " << move.banked << ")\n";
    }
  }
  return 0;
}

int cmd_simulate(const util::Flags& flags, Ticks u, int p, const Params& params) {
  const auto policy = make_policy(flags.get("policy", "equalized"));
  const std::string owner_spec = flags.get("owner", "poisson");
  const auto trials = static_cast<int>(flags.get_int("trials", 1));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  util::Accumulator acc;
  sim::SessionMetrics last;
  for (int t = 0; t < trials; ++t) {
    auto owner = make_owner(owner_spec, u, seed + static_cast<std::uint64_t>(t));
    last = sim::run_session(*policy, *owner, Opportunity{u, p}, params);
    acc.add(static_cast<double>(last.banked_work));
  }
  std::cout << policy->name() << " vs " << owner_spec << " (" << trials
            << " trials):\n  last session: " << last.to_string() << "\n  banked work: "
            << "mean=" << acc.mean() << " min=" << acc.min() << " max=" << acc.max()
            << "\n  minimax floor: " << solver::evaluate_policy(*policy, u, p, params)
            << "\n";
  return 0;
}

int cmd_sweep(const util::Flags& flags, int p, const Params& params) {
  const auto policy = make_policy(flags.get("policy", "equalized"));
  std::unique_ptr<util::CsvWriter> csv;
  if (flags.has("csv")) {
    csv = std::make_unique<util::CsvWriter>(
        flags.get("csv", "sweep.csv"),
        std::vector<std::string>{"U_over_c", "guaranteed", "optimal", "pct"});
  }
  util::Table out({"U/c", "guaranteed", "optimal", "% of optimal"});
  for (Ticks ratio = 32; ratio <= 8192; ratio *= 2) {
    const Ticks u = ratio * params.c;
    const Ticks w = solver::evaluate_policy(*policy, u, p, params);
    const auto table = solver::solve_fast(p, u, params);
    const Ticks opt = table.value(p, u);
    const double pct =
        opt > 0 ? 100.0 * static_cast<double>(w) / static_cast<double>(opt) : 0.0;
    out.add_row({util::Table::fmt(static_cast<long long>(ratio)),
                 util::Table::fmt(static_cast<long long>(w)),
                 util::Table::fmt(static_cast<long long>(opt)),
                 util::Table::fmt(pct, 4)});
    if (csv) {
      csv->write_row({static_cast<double>(ratio), static_cast<double>(w),
                      static_cast<double>(opt), pct});
    }
  }
  out.print(std::cout,
            policy->name() + " across lifespans, p=" + std::to_string(p));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const Params params{flags.get_int("c", 16)};
  const Ticks u = flags.get_int("u", 16 * 2048);
  const int p = static_cast<int>(flags.get_int("p", 2));

  const std::string cmd =
      flags.positionals().empty() ? "help" : flags.positionals().front();
  try {
    if (cmd == "schedule") return cmd_schedule(flags, u, p, params);
    if (cmd == "solve") return cmd_solve(flags, u, p, params);
    if (cmd == "evaluate") return cmd_evaluate(flags, u, p, params);
    if (cmd == "simulate") return cmd_simulate(flags, u, p, params);
    if (cmd == "sweep") return cmd_sweep(flags, p, params);
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
  std::cout <<
      "nowsched CLI — cycle-stealing schedules with guaranteed output\n"
      "usage: nowsched_cli <command> [--u=N] [--p=N] [--c=N] ...\n"
      "commands:\n"
      "  schedule  print a policy's episode and diagnostics\n"
      "            [--policy=equalized|adaptive|adaptive-rationalized|\n"
      "             nonadaptive|single-block|fixed-chunk:<mult>|geometric]\n"
      "  solve     exact optimum W(q)[U] for q = 0..p, optimal episode\n"
      "  evaluate  a policy's guaranteed work + the worst-case owner play\n"
      "  simulate  run sessions against a stochastic owner\n"
      "            [--owner=poisson[:gap]|pareto[:scale]|uniform[:prob]|none]\n"
      "            [--trials=N] [--seed=N]\n"
      "  sweep     guaranteed-vs-optimal across lifespans [--csv=out.csv]\n";
  return cmd == "help" ? 0 : 1;
}
