// Parameter study: practical scheduling guidance tables.
//
// For an operator who knows their setup cost c, contract length U, and
// interrupt allowance p, this prints: how many periods to use, how long the
// first/last periods should be, what work is guaranteed, and what fraction
// of the raw lifespan the draconian contract costs.
//
//   ./parameter_study --c=16 --max_p=4 --csv=study.csv
#include <cmath>
#include <iostream>

#include "nowsched.h"

using namespace nowsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const Params params{flags.get_int("c", 16)};
  const int max_p = static_cast<int>(flags.get_int("max_p", 4));
  const double c = static_cast<double>(params.c);

  std::cout << "Scheduling guidance for setup cost c = " << params.c << " ticks\n";

  std::unique_ptr<util::CsvWriter> csv;
  if (flags.has("csv")) {
    csv = std::make_unique<util::CsvWriter>(
        flags.get("csv", "study.csv"),
        std::vector<std::string>{"U_over_c", "p", "periods", "first_period_c",
                                 "last_period_c", "guaranteed", "efficiency_pct"});
  }

  for (int p = 0; p <= max_p; ++p) {
    util::Table out({"U/c", "periods", "first t/c", "last t/c", "guaranteed work",
                     "efficiency %", "overhead %"});
    for (Ticks ratio : {Ticks{32}, Ticks{128}, Ticks{512}, Ticks{2048}, Ticks{8192}}) {
      const Ticks u = ratio * params.c;
      const EqualizedGuidelinePolicy policy;
      const auto episode = policy.episode(u, p, params);
      const Ticks guaranteed = solver::evaluate_policy(policy, u, p, params);
      const double eff =
          100.0 * static_cast<double>(guaranteed) / static_cast<double>(u);
      const double overhead =
          100.0 * static_cast<double>(episode.size()) * c / static_cast<double>(u);
      out.add_row(
          {util::Table::fmt(static_cast<long long>(ratio)),
           util::Table::fmt(static_cast<long long>(episode.size())),
           util::Table::fmt(static_cast<double>(episode.period(0)) / c, 4),
           util::Table::fmt(
               static_cast<double>(episode.period(episode.size() - 1)) / c, 3),
           util::Table::fmt(static_cast<long long>(guaranteed)),
           util::Table::fmt(eff, 4), util::Table::fmt(overhead, 3)});
      if (csv) {
        csv->write_row({static_cast<double>(ratio), static_cast<double>(p),
                        static_cast<double>(episode.size()),
                        static_cast<double>(episode.period(0)) / c,
                        static_cast<double>(episode.period(episode.size() - 1)) / c,
                        static_cast<double>(guaranteed), eff});
      }
    }
    out.print(std::cout, "\np = " + std::to_string(p) +
                             " potential interrupts (equalized guideline)");
  }

  std::cout <<
      "\nReading the tables:\n"
      "  * guaranteed efficiency climbs toward 100% as U/c grows — the\n"
      "    deficit is only O(sqrt(cU));\n"
      "  * each extra potential interrupt shaves a further\n"
      "    (2 − 2^{1−p})·sqrt(2cU) slice off the guarantee (Thm 5.1);\n"
      "  * first periods grow like sqrt(2cU); final periods stay in the\n"
      "    (c, 2c] immune band (Thm 4.2).\n";
  if (csv) std::cout << "CSV written to " << csv->path() << "\n";
  return 0;
}
