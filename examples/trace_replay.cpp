// Trace replay: compare scheduling policies against the SAME owner
// behaviour, recorded once and replayed for every policy.
//
// Demonstrates the record/replay adversary machinery and the guarantee
// floor: whatever the trace, no policy ever banks less than its minimax
// guaranteed work.
//
//   ./trace_replay --u=32768 --p=3 --sessions=20 --seed=5
#include <iostream>
#include <memory>

#include "nowsched.h"

using namespace nowsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const Params params{flags.get_int("c", 16)};
  const Ticks u = flags.get_int("u", 16 * 2048);
  const int p = static_cast<int>(flags.get_int("p", 3));
  const int sessions = static_cast<int>(flags.get_int("sessions", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));

  std::vector<std::pair<std::string, PolicyPtr>> policies = {
      {"single-block", std::make_shared<SingleBlockPolicy>()},
      {"fixed-chunk-8c", std::make_shared<FixedChunkPolicy>(8.0)},
      {"geometric-1/2", std::make_shared<GeometricPolicy>(2.0, 2.0)},
      {"adaptive (§3.2)", std::make_shared<AdaptiveGuidelinePolicy>()},
      {"equalized (§4.2)", std::make_shared<EqualizedGuidelinePolicy>()},
  };

  std::cout << "Replaying " << sessions << " recorded owner sessions (U=" << u
            << ", p=" << p << ", c=" << params.c << ")\n\n";

  // Record owner behaviour once per session using a neutral pilot policy, so
  // interrupt *times* are identical for every policy under test.
  std::vector<adversary::InterruptTrace> traces;
  for (int s = 0; s < sessions; ++s) {
    adversary::ParetoSessionAdversary owner(static_cast<double>(u) / 8.0, 1.4,
                                            seed + static_cast<std::uint64_t>(s));
    adversary::RecordingAdversary recorder(owner);
    const FixedChunkPolicy pilot(4.0);
    (void)sim::run_session(pilot, recorder, Opportunity{u, p}, params);
    traces.push_back(recorder.trace());
  }

  util::Table out({"policy", "guaranteed", "min banked", "mean banked", "max banked"},
                  {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                   util::Align::kRight, util::Align::kRight});
  for (const auto& [name, policy] : policies) {
    const Ticks guaranteed = solver::evaluate_policy(*policy, u, p, params);
    util::Accumulator acc;
    for (const auto& trace : traces) {
      adversary::TraceAdversary owner{trace};
      const auto metrics = sim::run_session(*policy, owner, Opportunity{u, p}, params);
      acc.add(static_cast<double>(metrics.banked_work));
      if (metrics.banked_work < guaranteed) {
        std::cout << "!! floor violated by " << name << " — bug\n";
      }
    }
    out.add_row({name, util::Table::fmt(static_cast<long long>(guaranteed)),
                 util::Table::fmt(acc.min(), 6), util::Table::fmt(acc.mean(), 6),
                 util::Table::fmt(acc.max(), 6)});
  }
  out.print(std::cout, "Banked work across identical owner traces");
  std::cout << "\nEvery policy's minimum stays at or above its guaranteed column —\n"
               "the guarantee is a floor over ALL owner behaviours, not a forecast.\n"
               "Note how the single-block plan collapses on sessions whose owner\n"
               "returned at all, while the guideline policies degrade gracefully.\n";
  return 0;
}
